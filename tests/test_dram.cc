/** @file Unit tests for the DRAM/NVM bank timing model. */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "dram/nvm_timing.hh"
#include "sim/logging.hh"

using namespace proteus;

namespace {

stats::StatRegistry &
reg()
{
    static stats::StatRegistry r;
    return r;
}

int counter = 0;

std::unique_ptr<NvmTiming>
makeDram(bool nvm = true)
{
    MemTimingConfig cfg;
    cfg.nvmMode = nvm;
    return std::make_unique<NvmTiming>(
        cfg, reg(), "dram" + std::to_string(counter++));
}

} // namespace

TEST(NvmTiming, RowHitFasterThanMiss)
{
    auto dp = makeDram();
    auto &d = *dp;
    const Tick miss = d.issue(0, false, 0);
    ASSERT_TRUE(d.rowHit(64));
    const Tick start = miss + 100;
    const Tick hit = d.issue(64, false, start) - start;
    EXPECT_LT(hit, miss);
}

TEST(NvmTiming, NvmWriteActivateSlowerThanRead)
{
    auto dp = makeDram();
    auto &d = *dp;
    MemTimingConfig cfg;
    const Tick read_done = d.issue(0, false, 0);
    // A second bank, closed row, written: activation uses the NVM
    // write latency (109 vs 29 memory cycles).
    const Addr other_bank = cfg.rowBufferBytes;
    const Tick write_done = d.issue(other_bank, true, 0);
    EXPECT_GT(write_done, read_done + 200);
}

TEST(NvmTiming, DramModeHasNoNvmPenalty)
{
    auto dp = makeDram(false);
    auto &d = *dp;
    MemTimingConfig cfg;
    const Tick read_done = d.issue(0, false, 0);
    const Tick write_done = d.issue(cfg.rowBufferBytes, true, 0);
    // Write adds only tWR beyond the read path.
    EXPECT_LT(write_done, read_done + 100);
}

TEST(NvmTiming, BanksOperateInParallel)
{
    auto dp = makeDram();
    auto &d = *dp;
    MemTimingConfig cfg;
    ASSERT_NE(d.bankIndex(0), d.bankIndex(cfg.rowBufferBytes));
    d.issue(0, true, 0);
    // A different bank accepts a command while the first is busy.
    EXPECT_TRUE(d.bankReady(cfg.rowBufferBytes, 1));
}

TEST(NvmTiming, SameRowWritesStreamAtBurstRate)
{
    auto dp = makeDram();
    auto &d = *dp;
    d.issue(0, true, 0);
    // The first write pays the long NVM activate...
    Tick prev = 0;
    while (!d.bankReady(64, prev))
        ++prev;
    d.issue(64, true, prev);
    // ...after which same-row writes pipeline at ~burst rate.
    for (int i = 2; i <= 5; ++i) {
        const Addr a = static_cast<Addr>(i) * 64;
        Tick t = prev;
        while (!d.bankReady(a, t))
            ++t;
        EXPECT_LT(t - prev, 60u);   // ~tBurst in CPU cycles, not tRCD
        d.issue(a, true, t);
        prev = t;
    }
}

TEST(NvmTiming, RowConflictReopensRow)
{
    auto dp = makeDram();
    auto &d = *dp;
    MemTimingConfig cfg;
    const Addr row0 = 0;
    // Column group 17 XOR-folds back onto bank 0 with a different row.
    const Addr row1 = static_cast<Addr>(cfg.rowBufferBytes) * 17;
    ASSERT_EQ(d.bankIndex(row0), d.bankIndex(row1));
    d.issue(row0, false, 0);
    EXPECT_TRUE(d.rowHit(row0));
    EXPECT_FALSE(d.rowHit(row1));
    Tick t = 0;
    while (!d.bankReady(row1, t))
        ++t;
    d.issue(row1, false, t);
    EXPECT_TRUE(d.rowHit(row1));
    EXPECT_FALSE(d.rowHit(row0));
}

TEST(NvmTiming, CountsReadsAndWrites)
{
    auto dp = makeDram();
    auto &d = *dp;
    Tick t = 0;
    for (int i = 0; i < 3; ++i) {
        while (!d.bankReady(0, t))
            ++t;
        d.issue(0, false, t);
    }
    while (!d.bankReady(0, t))
        ++t;
    d.issue(0, true, t);
    EXPECT_EQ(d.totalReads(), 3u);
    EXPECT_EQ(d.totalWrites(), 1u);
}

TEST(NvmTiming, BusyBankPanics)
{
    auto dp = makeDram();
    auto &d = *dp;
    d.issue(0, true, 0);
    ASSERT_FALSE(d.bankReady(0, 0));
    EXPECT_THROW(d.issue(0, true, 0), PanicError);
}

TEST(NvmTiming, XorMappingSpreadsSequentialRows)
{
    auto dp = makeDram();
    auto &d = *dp;
    MemTimingConfig cfg;
    // Consecutive 2KB column groups land on distinct banks.
    std::set<unsigned> banks;
    for (unsigned i = 0; i < cfg.banks; ++i)
        banks.insert(d.bankIndex(static_cast<Addr>(i) *
                                 cfg.rowBufferBytes));
    EXPECT_EQ(banks.size(), cfg.banks);
}
