/**
 * @file
 * End-to-end integration tests: a FullSystem runs a workload's traces
 * to completion under every scheme. The persist-ordering checker is
 * active throughout (any store made durable before its undo log would
 * panic). At the end, the crash image (NVM + battery-backed queues)
 * must reproduce the functional final state — i.e., every committed
 * transaction really became durable.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "harness/system.hh"
#include "sim/logging.hh"

using namespace proteus;

namespace {

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.threads = 2;
    p.scale = 500;
    p.initScale = 100;
    p.seed = 3;
    return p;
}

using SchemeWorkload = std::tuple<LogScheme, WorkloadKind>;

class SystemIntegration
    : public ::testing::TestWithParam<SchemeWorkload>
{
};

} // namespace

TEST_P(SystemIntegration, RunsToDurableCompletion)
{
    const auto [scheme, kind] = GetParam();
    SystemConfig cfg = baselineConfig();
    cfg.logging.scheme = scheme;
    cfg.memCtrl.adr = scheme != LogScheme::PMEMPCommit;

    FullSystem system(cfg, kind, tinyParams());
    const RunResult result = system.run(500'000'000ull);
    ASSERT_TRUE(result.finished);
    EXPECT_GT(result.retiredOps, 0u);
    EXPECT_GT(result.committedTxs, 0u);

    // Functional invariants hold...
    Workload &wl = system.workload();
    const MemoryImage &final_state = system.heap().volatileImage();
    EXPECT_TRUE(wl.checkInvariants(final_state).empty());

    // ...and everything committed is durable: the crash image equals
    // the functional state for the persistent structures.
    const MemoryImage crash = system.crashImage();
    EXPECT_EQ(wl.serialize(crash), wl.serialize(final_state))
        << "committed transactions were not durable at completion";
    EXPECT_TRUE(wl.checkInvariants(crash).empty());
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndWorkloads, SystemIntegration,
    ::testing::Combine(
        ::testing::Values(LogScheme::PMEM, LogScheme::PMEMPCommit,
                          LogScheme::PMEMNoLog, LogScheme::ATOM,
                          LogScheme::Proteus, LogScheme::ProteusNoLWR),
        ::testing::Values(WorkloadKind::Queue, WorkloadKind::HashMap,
                          WorkloadKind::AvlTree, WorkloadKind::BTree,
                          WorkloadKind::RbTree)),
    [](const ::testing::TestParamInfo<SchemeWorkload> &info) {
        std::string name = toString(std::get<0>(info.param));
        for (char &c : name) {
            if (c == '+')
                c = '_';
        }
        return name + "_" +
               std::string(toString(std::get<1>(info.param)));
    });

TEST(SystemIntegration2, CpiStackSumsToCoreCyclesUnderEveryScheme)
{
    for (LogScheme scheme :
         {LogScheme::PMEM, LogScheme::PMEMPCommit, LogScheme::PMEMNoLog,
          LogScheme::ATOM, LogScheme::Proteus,
          LogScheme::ProteusNoLWR}) {
        SystemConfig cfg = baselineConfig();
        cfg.logging.scheme = scheme;
        cfg.memCtrl.adr = scheme != LogScheme::PMEMPCommit;
        FullSystem system(cfg, WorkloadKind::Queue, tinyParams());
        const RunResult result = system.run(500'000'000ull);
        ASSERT_TRUE(result.finished) << toString(scheme);

        // Exactly one bucket is charged per core cycle, so the stack
        // sums to the core's cycle count with no residue at all.
        std::uint64_t core_cycles = 0;
        for (unsigned t = 0; t < system.coreCount(); ++t) {
            const Core &core = system.core(t);
            EXPECT_EQ(core.cpiStack().total(), core.cycles())
                << toString(scheme) << " core " << t;
            core_cycles += core.cycles();
        }
        EXPECT_EQ(result.cpi.total(), core_cycles) << toString(scheme);
        EXPECT_GT(result.cpi.base, 0u) << toString(scheme);
    }
}

TEST(SystemIntegration2, ProteusDropsMostLogWrites)
{
    SystemConfig cfg = baselineConfig();
    cfg.logging.scheme = LogScheme::Proteus;
    FullSystem system(cfg, WorkloadKind::HashMap, tinyParams());
    const RunResult result = system.run(500'000'000ull);
    ASSERT_TRUE(result.finished);
    EXPECT_GT(result.logWritesDropped, 0u);
}

TEST(SystemIntegration2, LltMissRateInPaperBallpark)
{
    SystemConfig cfg = baselineConfig();
    cfg.logging.scheme = LogScheme::Proteus;
    WorkloadParams p = tinyParams();
    p.scale = 200;
    FullSystem system(cfg, WorkloadKind::Queue, p);
    const RunResult result = system.run(500'000'000ull);
    ASSERT_TRUE(result.finished);
    // Table 4 reports 22.5%-51.6%; allow generous slack.
    EXPECT_GT(result.lltMissRate, 0.05);
    EXPECT_LT(result.lltMissRate, 0.95);
}

TEST(SystemIntegration2, SlowNvmIsSlower)
{
    WorkloadParams p = tinyParams();
    SystemConfig fast = baselineConfig();
    fast.logging.scheme = LogScheme::Proteus;
    FullSystem fast_sys(fast, WorkloadKind::Queue, p);
    const auto fast_result = fast_sys.run(500'000'000ull);

    SystemConfig slow = slowNvmConfig();
    slow.logging.scheme = LogScheme::Proteus;
    FullSystem slow_sys(slow, WorkloadKind::Queue, p);
    const auto slow_result = slow_sys.run(500'000'000ull);

    ASSERT_TRUE(fast_result.finished && slow_result.finished);
    EXPECT_GT(slow_result.cycles, fast_result.cycles);
}

TEST(SystemIntegration2, ThreadCountAboveCoresIsFatal)
{
    SystemConfig cfg = baselineConfig();
    cfg.cores = 1;
    WorkloadParams p = tinyParams();
    p.threads = 2;
    EXPECT_THROW(FullSystem(cfg, WorkloadKind::Queue, p), FatalError);
}
