/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace proteus;

TEST(EventQueue, EmptyByDefault)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextEventTick(), maxTick);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&]() { order.push_back(3); });
    q.schedule(10, [&]() { order.push_back(1); });
    q.schedule(20, [&]() { order.push_back(2); });
    q.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&, i]() { order.push_back(i); });
    q.runUntil(5);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&]() { ++fired; });
    q.schedule(11, [&]() { ++fired; });
    q.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.nextEventTick(), 11u);
    q.runUntil(11);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CallbackMayScheduleMore)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&]() {
        ++fired;
        q.schedule(1, [&]() { ++fired; });   // same tick: runs too
    });
    q.runUntil(1);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ClearDropsEverything)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&]() { ++fired; });
    q.schedule(2, [&]() { ++fired; });
    q.clear();
    q.runUntil(100);
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NullCallbackPanics)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(1, nullptr), PanicError);
}
