/** @file Unit tests for the memory controller (WPQ/LPQ/ADR, LWR, ATOM). */

#include <gtest/gtest.h>

#include <memory>

#include "faults/fault_config.hh"
#include "memctrl/mem_ctrl.hh"
#include "sim/logging.hh"

using namespace proteus;

namespace {

struct McFixture
{
    explicit McFixture(LogScheme scheme = LogScheme::Proteus,
                       unsigned atom_truncation_entries = 64)
    {
        cfg = baselineConfig();
        cfg.logging.scheme = scheme;
        cfg.logging.atomTruncationEntries = atom_truncation_entries;
        mc = std::make_unique<MemCtrl>(sim, cfg, nvm);
        sim.addTicked(mc.get());
    }

    WriteRequest
    dataWrite(Addr addr, std::uint64_t value)
    {
        WriteRequest req;
        req.addr = addr;
        req.kind = WriteKind::Data;
        std::memcpy(req.data.data(), &value, 8);
        return req;
    }

    WriteRequest
    logWrite(Addr log_to, CoreId core, TxId tx, Addr from,
             std::uint64_t seq, std::uint32_t extra_flags = 0)
    {
        LogRecord rec;
        rec.fromAddr = from;
        rec.txId = tx;
        rec.seq = seq;
        rec.flags = LogRecord::flagValid | extra_flags;
        rec.magic = LogRecord::magicValue;
        WriteRequest req;
        req.addr = log_to;
        req.kind = WriteKind::Log;
        req.core = core;
        req.txId = tx;
        req.data = rec.toBytes();
        return req;
    }

    void
    runUntilEmpty(Tick max = 1000000)
    {
        ASSERT_TRUE(sim.runUntil([&]() { return mc->empty(); }, max));
    }

    Simulator sim;
    SystemConfig cfg;
    MemoryImage nvm;
    std::unique_ptr<MemCtrl> mc;
};

} // namespace

TEST(MemCtrl, ReadCompletes)
{
    McFixture f;
    bool done = false;
    f.mc->read(0x1000, [&]() { done = true; });
    f.sim.runUntil([&]() { return done; }, 10000);
    EXPECT_TRUE(done);
    EXPECT_EQ(f.mc->nvmReads(), 1u);
}

TEST(MemCtrl, WriteReachesNvmImage)
{
    McFixture f;
    f.mc->write(f.dataWrite(0x2000, 0xABCD));
    f.runUntilEmpty();
    EXPECT_EQ(f.nvm.read64(0x2000), 0xABCDu);
    EXPECT_EQ(f.mc->nvmWrites(), 1u);
}

TEST(MemCtrl, WpqForwardsToReads)
{
    McFixture f;
    f.mc->write(f.dataWrite(0x3000, 1));
    bool done = false;
    f.mc->read(0x3000, [&]() { done = true; });
    // Forwarding completes in a few cycles without a DRAM read.
    f.sim.run(20);
    EXPECT_TRUE(done);
    EXPECT_EQ(f.mc->nvmReads(), 0u);
}

TEST(MemCtrl, WriteCombiningMergesSameBlock)
{
    McFixture f;
    f.mc->write(f.dataWrite(0x4000, 1));
    f.mc->write(f.dataWrite(0x4000, 2));
    f.runUntilEmpty();
    EXPECT_EQ(f.mc->nvmWrites(), 1u);
    EXPECT_EQ(f.nvm.read64(0x4000), 2u);
}

TEST(MemCtrl, LogWritesGoToLpqAndAreHeld)
{
    McFixture f;
    f.mc->write(f.logWrite(0x9000, 0, 7, 0x5000, 0));
    // Proteus holds log entries in the LPQ: no NVM writes yet.
    f.sim.run(5000);
    EXPECT_EQ(f.mc->nvmWrites(), 0u);
    EXPECT_FALSE(f.mc->empty());
}

TEST(MemCtrl, TxEndFlashClearsLogEntries)
{
    McFixture f;
    for (unsigned i = 0; i < 4; ++i) {
        f.mc->write(f.logWrite(0x9000 + i * 64, 0, 7,
                               0x5000 + i * 32, i));
    }
    f.mc->txEnd(0, 7);
    // Three of four dropped; the last is the held tx-end marker.
    EXPECT_EQ(f.mc->droppedLogWrites(), 3u);
}

TEST(MemCtrl, MarkerDroppedBySuccessorTx)
{
    McFixture f;
    f.mc->write(f.logWrite(0x9000, 0, 7, 0x5000, 0));
    f.mc->txEnd(0, 7);
    // First log write of tx 8 discards tx 7's held marker.
    f.mc->write(f.logWrite(0x9040, 0, 8, 0x5020, 0));
    f.mc->txEnd(0, 8);
    f.sim.run(2);
    EXPECT_DOUBLE_EQ(
        f.sim.statsRegistry().lookup("mc.markersDropped"), 1.0);
    // Transaction 7 never cost an NVM write at all.
    EXPECT_EQ(f.mc->nvmWrites(), 0u);
}

TEST(MemCtrl, NoLwrWritesAllLogEntries)
{
    McFixture f(LogScheme::ProteusNoLWR);
    for (unsigned i = 0; i < 4; ++i) {
        f.mc->write(f.logWrite(0x9000 + i * 64, 0, 7,
                               0x5000 + i * 32, i));
    }
    f.mc->txEnd(0, 7);      // no-op without log write removal
    EXPECT_EQ(f.mc->droppedLogWrites(), 0u);
    f.runUntilEmpty();
    EXPECT_EQ(f.mc->nvmWrites(), 4u);
}

TEST(MemCtrl, LogGranuleDurableTracksAcceptance)
{
    McFixture f;
    EXPECT_FALSE(f.mc->logGranuleDurable(0, 7, 0x5000));
    f.mc->write(f.logWrite(0x9000, 0, 7, 0x5000, 0));
    EXPECT_TRUE(f.mc->logGranuleDurable(0, 7, 0x5000));
    EXPECT_TRUE(f.mc->logGranuleDurable(0, 7, 0x5010));  // same granule
    EXPECT_FALSE(f.mc->logGranuleDurable(0, 7, 0x5020));
    EXPECT_FALSE(f.mc->logGranuleDurable(1, 7, 0x5000)); // other core
}

TEST(MemCtrl, DrainWatermarkIgnoresLaterWrites)
{
    McFixture f;
    f.mc->write(f.dataWrite(0x2000, 1));
    bool drained = false;
    f.mc->drain([&]() { drained = true; });
    // Writes arriving after the pcommit do not delay it.
    f.mc->write(f.dataWrite(0x2040, 2));
    f.sim.runUntil([&]() { return drained; }, 100000);
    EXPECT_TRUE(drained);
}

TEST(MemCtrl, BatteryDrainAppliesQueuedWrites)
{
    McFixture f;
    f.mc->write(f.dataWrite(0x6000, 0x11));
    f.mc->write(f.logWrite(0x9000, 0, 7, 0x5000, 0));
    // Nothing has reached the NVM array yet.
    MemoryImage crash = f.nvm;
    f.mc->applyBatteryDrain(crash);
    EXPECT_EQ(crash.read64(0x6000), 0x11u);
    std::uint8_t bytes[logEntrySize];
    crash.read(0x9000, bytes, sizeof(bytes));
    EXPECT_TRUE(LogRecord::fromBytes(bytes).valid());
}

TEST(MemCtrl, AtomLogAllocatesSlotsAndAcks)
{
    McFixture f(LogScheme::ATOM);
    f.mc->bindAtomLogArea(0, 0xA0000, 0xA0000 + 64 * logEntrySize);
    LogRecord rec;
    rec.fromAddr = 0x5000;
    rec.txId = 3;
    rec.flags = LogRecord::flagValid;
    rec.magic = LogRecord::magicValue;
    EXPECT_TRUE(f.mc->atomLog(0, 3, rec));
    EXPECT_TRUE(f.mc->logGranuleDurable(0, 3, 0x5000));
    f.runUntilEmpty();
    // Entry written beyond the commit-record block.
    std::uint8_t bytes[logEntrySize];
    f.nvm.read(0xA0000 + logEntrySize, bytes, sizeof(bytes));
    EXPECT_TRUE(LogRecord::fromBytes(bytes).valid());
}

TEST(MemCtrl, AtomCommitRecordWritten)
{
    McFixture f(LogScheme::ATOM);
    f.mc->bindAtomLogArea(0, 0xA0000, 0xA0000 + 64 * logEntrySize);
    EXPECT_TRUE(f.mc->atomTxCommit(0, 42));
    f.runUntilEmpty();
    EXPECT_EQ(f.nvm.read64(0xA0000), 42u);
}

TEST(MemCtrl, AtomTruncationBeyondResourcesSearches)
{
    McFixture f(LogScheme::ATOM, 2);
    f.mc->bindAtomLogArea(0, 0xA0000, 0xA0000 + 64 * logEntrySize);

    LogRecord rec;
    rec.fromAddr = 0x5000;
    rec.txId = 3;
    rec.flags = LogRecord::flagValid;
    rec.magic = LogRecord::magicValue;
    for (unsigned i = 0; i < 5; ++i) {
        rec.seq = i;
        ASSERT_TRUE(f.mc->atomLog(0, 3, rec));
    }
    bool done = false;
    f.mc->atomTxEnd(0, 3, [&]() { done = true; });
    f.sim.runUntil([&]() { return done; }, 1000000);
    EXPECT_TRUE(done);
    // Three untracked entries needed a search read + invalidation.
    EXPECT_DOUBLE_EQ(
        f.sim.statsRegistry().lookup("mc.atomSearchReads"), 3.0);
    EXPECT_DOUBLE_EQ(
        f.sim.statsRegistry().lookup("mc.atomInvalidationWrites"), 3.0);
}

TEST(MemCtrl, FullQueuePanicsAndCanAcceptGuards)
{
    McFixture f;
    unsigned accepted = 0;
    while (f.mc->canAcceptWrite(WriteKind::Data)) {
        f.mc->write(f.dataWrite(0x100000 + accepted * 64, accepted));
        ++accepted;
    }
    EXPECT_EQ(accepted, f.cfg.memCtrl.wpqEntries);
    EXPECT_THROW(f.mc->write(f.dataWrite(0x9990000, 1)), PanicError);
}

TEST(MemCtrl, UnalignedWritePanics)
{
    McFixture f;
    EXPECT_THROW(f.mc->write(f.dataWrite(0x1001, 1)), PanicError);
}

TEST(MemCtrl, FlushCoreLogsDrains)
{
    McFixture f;
    f.mc->write(f.logWrite(0x9000, 0, 7, 0x5000, 0));
    bool done = false;
    f.mc->flushCoreLogs(0, [&]() { done = true; });
    f.sim.runUntil([&]() { return done; }, 1000000);
    EXPECT_TRUE(done);
    EXPECT_EQ(f.mc->nvmWrites(), 1u);   // forced to NVM
}

TEST(MemCtrl, FullReadQueuePanicsAndCanAcceptGuards)
{
    McFixture f;
    unsigned accepted = 0;
    while (f.mc->canAcceptRead()) {
        // Distinct unwritten blocks: no WPQ forwarding, all queue.
        f.mc->read(0x200000 + accepted * 64, []() {});
        ++accepted;
    }
    EXPECT_EQ(accepted, f.cfg.memCtrl.readQueueEntries);
    EXPECT_THROW(f.mc->read(0x9990000, []() {}), PanicError);
    // The queue drains normally afterwards and frees its slots.
    f.runUntilEmpty();
    EXPECT_TRUE(f.mc->canAcceptRead());
}

TEST(MemCtrl, TxEndMarkerPatchesInflightLogWrite)
{
    // Regression: tx-end arrives when (a) the transaction's last log
    // entry has already left the LPQ but its array write is still in
    // flight, and (b) the LPQ is full so no marker entry can queue. The
    // fallback must patch the in-flight payload — writing the NVM slot
    // directly would be overwritten by the stale (no tx-end) completion.
    McFixture f;
    f.mc->write(f.logWrite(0x9000, 0, 7, 0x5000, 0));
    bool flushed = false;
    f.mc->flushCoreLogs(0, [&]() { flushed = true; });
    ASSERT_TRUE(f.sim.runUntil([&]() { return f.mc->nvmWrites() == 1; },
                               100000));
    ASSERT_FALSE(flushed);      // issued to the array, not yet persisted

    // Fill the LPQ from another core so canAcceptWrite(Log) is false.
    unsigned filled = 0;
    while (f.mc->canAcceptWrite(WriteKind::Log)) {
        f.mc->write(f.logWrite(0xA0000 + filled * 64, 1, 99,
                               0x7000 + filled * 32, filled));
        ++filled;
    }
    ASSERT_GT(filled, 0u);

    f.mc->txEnd(0, 7);
    EXPECT_DOUBLE_EQ(f.sim.statsRegistry().lookup("mc.markerWrites"),
                     1.0);

    ASSERT_TRUE(f.sim.runUntil([&]() { return flushed; }, 1000000));
    std::uint8_t bytes[logEntrySize];
    f.nvm.read(0x9000, bytes, sizeof(bytes));
    const LogRecord rec = LogRecord::fromBytes(bytes);
    ASSERT_TRUE(rec.valid());
    EXPECT_TRUE(rec.committed());   // the completion carried the marker
    EXPECT_EQ(rec.txId, 7u);
}

TEST(MemCtrl, TxEndMarkerDirectWriteWhenEntryAlreadyPersisted)
{
    // Same LPQ-full fallback, but the entry's write has fully completed:
    // with nothing in flight for the slot the marker is applied to the
    // array directly.
    McFixture f;
    f.mc->write(f.logWrite(0x9000, 0, 7, 0x5000, 0));
    bool flushed = false;
    f.mc->flushCoreLogs(0, [&]() { flushed = true; });
    ASSERT_TRUE(f.sim.runUntil([&]() { return flushed; }, 1000000));

    unsigned filled = 0;
    while (f.mc->canAcceptWrite(WriteKind::Log)) {
        f.mc->write(f.logWrite(0xA0000 + filled * 64, 1, 99,
                               0x7000 + filled * 32, filled));
        ++filled;
    }
    f.mc->txEnd(0, 7);

    std::uint8_t bytes[logEntrySize];
    f.nvm.read(0x9000, bytes, sizeof(bytes));
    const LogRecord rec = LogRecord::fromBytes(bytes);
    ASSERT_TRUE(rec.valid());
    EXPECT_TRUE(rec.committed());
    EXPECT_EQ(rec.txId, 7u);
}

TEST(MemCtrl, FlashClearWhileFaultedLogWriteInFlight)
{
    // LWR flash-clear racing a media fault: the transaction's first log
    // entry is mid-flight to the array (and will tear on completion)
    // when tx-end flash-clears the LPQ-resident rest. The torn line
    // must be poisoned, the drops counted, and the controller must
    // still drain cleanly.
    Simulator sim;
    SystemConfig cfg = baselineConfig();
    cfg.logging.scheme = LogScheme::Proteus;
    cfg.faults =
        faults::parseFaultSpec("torn=1,detect=8,correct=1,seed=3");
    MemoryImage nvm;
    MemCtrl mc(sim, cfg, nvm);
    sim.addTicked(&mc);

    auto logWrite = [](Addr to, std::uint64_t seq) {
        LogRecord rec;
        rec.fromAddr = 0x5000 + seq * logDataSize;
        rec.txId = 7;
        rec.seq = seq;
        rec.flags = LogRecord::flagValid;
        rec.magic = LogRecord::magicValue;
        WriteRequest req;
        req.addr = to;
        req.kind = WriteKind::Log;
        req.core = 0;
        req.txId = 7;
        req.data = rec.toBytes();
        return req;
    };

    mc.write(logWrite(0x9000, 0));
    bool flushed = false;
    mc.flushCoreLogs(0, [&]() { flushed = true; });
    ASSERT_TRUE(sim.runUntil([&]() { return mc.nvmWrites() == 1; },
                             100000));
    ASSERT_FALSE(flushed);      // entry 0 in flight, about to tear

    for (std::uint64_t seq = 1; seq <= 3; ++seq)
        mc.write(logWrite(0x9000 + seq * 64, seq));
    mc.txEnd(0, 7);     // drops seq 1..2, holds seq 3 as the marker
    EXPECT_EQ(mc.droppedLogWrites(), 2u);

    bool drained = false;
    mc.flushCoreLogs(0, [&]() { drained = true; });
    ASSERT_TRUE(sim.runUntil(
        [&]() { return drained && mc.empty(); }, 1000000));

    // Both array writes (entry 0, marker) tore and were ECC-detected.
    EXPECT_DOUBLE_EQ(sim.statsRegistry().lookup("faults.tornWrites"),
                     2.0);
    EXPECT_TRUE(nvm.isPoisoned(0x9000));
    EXPECT_TRUE(nvm.isPoisoned(0x90C0));
    EXPECT_EQ(mc.nvmWrites(), 2u);
}
