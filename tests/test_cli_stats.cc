/** @file Tests for the JSON stats dump and harness option parsing. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "harness/experiments.hh"
#include "json_validator.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/trace_events.hh"

using namespace proteus;

TEST(StatsJson, WellFormedFlatObject)
{
    stats::StatRegistry reg;
    stats::Scalar a(reg, "a.count", "");
    stats::Scalar b(reg, "b.count", "");
    a += 3;
    b += 4;
    std::ostringstream os;
    reg.dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"a.count\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"b.count\": 4"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json[json.size() - 2], '}');
    // Exactly one comma between two entries.
    EXPECT_EQ(std::count(json.begin(), json.end(), ','), 1);
}

TEST(StatsJson, NonFiniteValuesEmitNull)
{
    stats::StatRegistry reg;
    stats::Formula nan_stat(reg, "weird.nan", "", []() {
        return std::numeric_limits<double>::quiet_NaN();
    });
    stats::Formula inf_stat(reg, "weird.inf", "", []() {
        return std::numeric_limits<double>::infinity();
    });
    std::ostringstream os;
    reg.dumpJson(os);
    const std::string json = os.str();
    EXPECT_TRUE(testjson::isValidJson(json)) << json;
    EXPECT_NE(json.find("\"weird.nan\": null"), std::string::npos);
    EXPECT_NE(json.find("\"weird.inf\": null"), std::string::npos);
}

TEST(StatsJson, EscapesStatNames)
{
    stats::StatRegistry reg;
    stats::Scalar s(reg, "odd\"name\\with\tescapes", "");
    s += 1;
    std::ostringstream os;
    reg.dumpJson(os);
    const std::string json = os.str();
    EXPECT_TRUE(testjson::isValidJson(json)) << json;
    EXPECT_NE(json.find("odd\\\"name\\\\with\\tescapes"),
              std::string::npos);
}

TEST(StatsJson, DistributionEmitsBucketsAndBounds)
{
    stats::StatRegistry reg;
    stats::Distribution d(reg, "lat", "", 0, 100, 4);
    d.sample(-5);       // underflow
    d.sample(10);
    d.sample(60);
    d.sample(250);      // overflow
    std::ostringstream os;
    reg.dumpJson(os);
    const std::string json = os.str();
    EXPECT_TRUE(testjson::isValidJson(json)) << json;
    EXPECT_NE(json.find("\"underflow\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"overflow\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"min\": -5"), std::string::npos);
    EXPECT_NE(json.find("\"max\": 250"), std::string::npos);
    EXPECT_NE(json.find("\"buckets\": [1, 0, 1, 0]"),
              std::string::npos);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 1u);
}

TEST(BenchOptionsParse, RecognizesAllFlags)
{
    const char *argv[] = {"prog",    "--scale",      "25",
                          "--threads", "2",          "--seed",
                          "9",       "--init-scale", "4",
                          "--dram",  "--set",        "memCtrl.adr=false"};
    BenchOptions opts = BenchOptions::parse(
        static_cast<int>(std::size(argv)),
        const_cast<char **>(argv));
    EXPECT_EQ(opts.scale, 25u);
    EXPECT_EQ(opts.threads, 2u);
    EXPECT_EQ(opts.seed, 9u);
    EXPECT_EQ(opts.initScale, 4u);
    EXPECT_TRUE(opts.dram);

    const SystemConfig cfg = opts.makeConfig();
    EXPECT_FALSE(cfg.mem.nvmMode);      // --dram
    EXPECT_FALSE(cfg.memCtrl.adr);      // --set override
    EXPECT_EQ(cfg.seed, 9u);
}

TEST(BenchOptionsParse, ObservabilityFlags)
{
    const char *argv[] = {"prog",
                          "--stats-interval", "1000",
                          "--stats-out", "iv.json",
                          "--trace-events", "trace.json",
                          "--trace-categories", "cpu,log"};
    BenchOptions opts = BenchOptions::parse(
        static_cast<int>(std::size(argv)),
        const_cast<char **>(argv));
    const SystemConfig cfg = opts.makeConfig();
    EXPECT_EQ(cfg.obs.statsInterval, 1000u);
    EXPECT_EQ(cfg.obs.statsOut, "iv.json");
    EXPECT_EQ(cfg.obs.traceEvents, "trace.json");
    EXPECT_EQ(cfg.obs.traceCategories,
              unsigned{TraceCatCpu | TraceCatLog});
}

TEST(BenchOptionsParse, StatsIntervalWithoutOutIsFatal)
{
    const char *argv[] = {"prog", "--stats-interval", "100"};
    BenchOptions opts = BenchOptions::parse(
        3, const_cast<char **>(argv));
    EXPECT_THROW(opts.makeConfig(), FatalError);
}

TEST(BenchOptionsParse, UnknownFlagIsFatal)
{
    const char *argv[] = {"prog", "--bogus"};
    EXPECT_THROW(BenchOptions::parse(2, const_cast<char **>(argv)),
                 FatalError);
}

TEST(BenchOptionsParse, MissingValueIsFatal)
{
    const char *argv[] = {"prog", "--scale"};
    EXPECT_THROW(BenchOptions::parse(2, const_cast<char **>(argv)),
                 FatalError);
}

TEST(Geomean, Basics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_THROW(geomean({1.0, 0.0}), PanicError);
}

TEST(TablePrinterFmt, Precision)
{
    EXPECT_EQ(TablePrinter::fmt(1.2345), "1.23");
    EXPECT_EQ(TablePrinter::fmt(1.2345, 1), "1.2");
    EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
}
