/** @file Tests for the JSON stats dump and harness option parsing. */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiments.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace proteus;

TEST(StatsJson, WellFormedFlatObject)
{
    stats::StatRegistry reg;
    stats::Scalar a(reg, "a.count", "");
    stats::Scalar b(reg, "b.count", "");
    a += 3;
    b += 4;
    std::ostringstream os;
    reg.dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"a.count\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"b.count\": 4"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json[json.size() - 2], '}');
    // Exactly one comma between two entries.
    EXPECT_EQ(std::count(json.begin(), json.end(), ','), 1);
}

TEST(BenchOptionsParse, RecognizesAllFlags)
{
    const char *argv[] = {"prog",    "--scale",      "25",
                          "--threads", "2",          "--seed",
                          "9",       "--init-scale", "4",
                          "--dram",  "--set",        "memCtrl.adr=false"};
    BenchOptions opts = BenchOptions::parse(
        static_cast<int>(std::size(argv)),
        const_cast<char **>(argv));
    EXPECT_EQ(opts.scale, 25u);
    EXPECT_EQ(opts.threads, 2u);
    EXPECT_EQ(opts.seed, 9u);
    EXPECT_EQ(opts.initScale, 4u);
    EXPECT_TRUE(opts.dram);

    const SystemConfig cfg = opts.makeConfig();
    EXPECT_FALSE(cfg.mem.nvmMode);      // --dram
    EXPECT_FALSE(cfg.memCtrl.adr);      // --set override
    EXPECT_EQ(cfg.seed, 9u);
}

TEST(BenchOptionsParse, UnknownFlagIsFatal)
{
    const char *argv[] = {"prog", "--bogus"};
    EXPECT_THROW(BenchOptions::parse(2, const_cast<char **>(argv)),
                 FatalError);
}

TEST(BenchOptionsParse, MissingValueIsFatal)
{
    const char *argv[] = {"prog", "--scale"};
    EXPECT_THROW(BenchOptions::parse(2, const_cast<char **>(argv)),
                 FatalError);
}

TEST(Geomean, Basics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_THROW(geomean({1.0, 0.0}), PanicError);
}

TEST(TablePrinterFmt, Precision)
{
    EXPECT_EQ(TablePrinter::fmt(1.2345), "1.23");
    EXPECT_EQ(TablePrinter::fmt(1.2345, 1), "1.2");
    EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
}
