/**
 * @file
 * The workload generation subsystem, tested at every layer: GenSpec
 * parsing/canonicalization, the key-distribution generators against
 * their analytical distributions, the generated KV workload's
 * functional invariants across schemes, crash consistency under the
 * oracle, and end-to-end determinism across --jobs levels and
 * cycle-skip settings.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "crashtest/crash_tester.hh"
#include "harness/experiments.hh"
#include "harness/parallel_runner.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "wlgen/gen_workload.hh"
#include "wlgen/keydist.hh"
#include "workloads/registry.hh"

using namespace proteus;
using wlgen::GenSpec;

namespace {

/** Small spec for fast end-to-end runs. */
GenSpec
smallSpec(const std::string &delta = "")
{
    GenSpec spec = GenSpec::parse("keyspace=512,ops=400");
    if (!delta.empty())
        spec = GenSpec::parse(delta, spec);
    return spec;
}

WorkloadParams
smallParams(unsigned threads = 2)
{
    WorkloadParams p;
    p.threads = threads;
    p.scale = 1;
    p.initScale = 1;
    p.seed = 7;
    return p;
}

struct GenRun
{
    GenRun(const GenSpec &spec, LogScheme scheme,
           const WorkloadParams &params)
        : heap(std::make_unique<PersistentHeap>()),
          wl(makeWorkload(WorkloadKind::Generated, *heap, scheme,
                          params, WorkloadExtras{{}, spec}))
    {
        wl->setup();
        wl->generateTraces();
    }

    std::unique_ptr<PersistentHeap> heap;
    std::unique_ptr<Workload> wl;
};

} // namespace

// ---------------------------------------------------------------------
// GenSpec: parse / canonical round-trips and validation.
// ---------------------------------------------------------------------

TEST(WlgenSpec, CanonicalRoundTripsThroughParse)
{
    const std::vector<std::string> specs{
        "",
        "dist=uniform",
        "dist=zipf,theta=0.75",
        "dist=hot,hot-frac=0.2,hot-ops=0.8",
        "read=0,update=0,insert=50,delete=50,rmw=0,keys=2-8",
        "vsize=256,tables=1,keyspace=1000,populate=100,ops=123",
    };
    for (const std::string &s : specs) {
        const GenSpec spec = GenSpec::parse(s);
        const GenSpec again = GenSpec::parse(spec.canonical());
        EXPECT_EQ(spec, again) << s;
        EXPECT_EQ(spec.canonical(), again.canonical()) << s;
        EXPECT_EQ(spec.hash(), again.hash()) << s;
    }
}

TEST(WlgenSpec, SpellingsOfOneValueShareIdentity)
{
    const GenSpec a = GenSpec::parse("theta=0.9");
    const GenSpec b = GenSpec::parse("theta=0.90000");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.canonical(), b.canonical());
    EXPECT_EQ(a.hash(), b.hash());
    // zipf and zipfian are aliases.
    EXPECT_EQ(GenSpec::parse("dist=zipfian"), GenSpec::parse("dist=zipf"));
}

TEST(WlgenSpec, SingletonKeyRangePrintsAsOneNumber)
{
    const GenSpec spec = GenSpec::parse("keys=4");
    EXPECT_NE(spec.canonical().find("keys=4,"), std::string::npos);
    EXPECT_EQ(spec.keysMin, 4u);
    EXPECT_EQ(spec.keysMax, 4u);
}

TEST(WlgenSpec, DistributionKnobsDoNotLeakAcrossDists)
{
    // A uniform spec carries no theta, so two specs differing only in
    // an irrelevant knob are the same workload.
    const GenSpec a = GenSpec::parse("dist=uniform,theta=0.5");
    const GenSpec b = GenSpec::parse("dist=uniform,theta=0.9");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.canonical(), b.canonical());
    EXPECT_EQ(a.canonical().find("theta"), std::string::npos);
}

TEST(WlgenSpec, RejectsInvalidSpecs)
{
    const std::vector<std::string> bad{
        "read=90",              // mix sums to 95
        "vsize=12",             // not a multiple of 8
        "vsize=0",
        "theta=1",              // theta must be < 1
        "theta=-0.1",
        "keys=0",
        "keys=5-2",             // inverted range
        "keys=1-65",            // above the per-tx cap
        "tables=0",
        "tables=65",
        "keyspace=8",           // below the minimum
        "populate=101",
        "ops=0",
        "dist=hot,hot-frac=0",
        "dist=hot,hot-ops=1.5",
        "dist=gaussian",        // unknown distribution
        "nope=1",               // unknown key
        "theta=abc",            // not a number
        "keys",                 // missing '='
    };
    for (const std::string &s : bad)
        EXPECT_THROW(GenSpec::parse(s), FatalError) << s;
}

TEST(WlgenSpec, SpecFileParsesWithInlineOverlay)
{
    const std::string path =
        ::testing::TempDir() + "/wlgen_spec_test.conf";
    {
        std::ofstream os(path);
        os << "# a comment\n"
           << "dist = zipf\n"
           << "theta = 0.5\n"
           << "\n"
           << "keyspace = 2048\n";
    }
    const GenSpec from_file = GenSpec::parseFile(path);
    EXPECT_EQ(from_file.dist, wlgen::KeyDist::Zipfian);
    EXPECT_EQ(from_file.keySpace, 2048u);
    EXPECT_DOUBLE_EQ(from_file.theta, 0.5);

    // Inline --wl-spec overrides on top of the file.
    const GenSpec overlaid = GenSpec::parse("theta=0.99", from_file);
    EXPECT_DOUBLE_EQ(overlaid.theta, 0.99);
    EXPECT_EQ(overlaid.keySpace, 2048u);

    EXPECT_THROW(GenSpec::parseFile(path + ".missing"), FatalError);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Key distributions against their analytical shapes.
// ---------------------------------------------------------------------

namespace {

std::vector<double>
empiricalFrequencies(const wlgen::KeyGenerator &gen, std::uint64_t n,
                     std::size_t draws, std::uint64_t seed = 42)
{
    Random rng(seed);
    std::vector<double> freq(n, 0.0);
    for (std::size_t i = 0; i < draws; ++i) {
        const std::uint64_t rank = gen.nextRank(rng);
        EXPECT_LT(rank, n);
        freq[rank] += 1.0;
    }
    for (double &f : freq)
        f /= static_cast<double>(draws);
    return freq;
}

} // namespace

TEST(WlgenKeyDist, ZipfianMassSumsToOne)
{
    const wlgen::ZipfianGenerator gen(1000, 0.9);
    double sum = 0;
    for (std::uint64_t r = 0; r < 1000; ++r)
        sum += gen.mass(r);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(WlgenKeyDist, ZipfianMatchesAnalyticalMass)
{
    const std::uint64_t n = 100;
    const wlgen::ZipfianGenerator gen(n, 0.9);
    const auto freq = empiricalFrequencies(gen, n, 200000);

    // Every rank whose analytical mass is non-negligible must match
    // within 15% relative error at 200k draws.
    for (std::uint64_t r = 0; r < n; ++r) {
        const double expect = gen.mass(r);
        if (expect < 0.005)
            continue;
        EXPECT_NEAR(freq[r], expect, 0.15 * expect)
            << "rank " << r;
    }
    // And the skew must be real: rank 0 dominates the median rank.
    EXPECT_GT(freq[0], 5 * freq[n / 2]);
}

TEST(WlgenKeyDist, ZipfianThetaZeroIsNearlyUniform)
{
    const std::uint64_t n = 50;
    const wlgen::ZipfianGenerator gen(n, 0.0);
    for (std::uint64_t r = 0; r < n; ++r)
        EXPECT_NEAR(gen.mass(r), 1.0 / n, 1e-9);
    const auto freq = empiricalFrequencies(gen, n, 100000);
    for (std::uint64_t r = 0; r < n; ++r)
        EXPECT_NEAR(freq[r], 1.0 / n, 0.30 / n) << "rank " << r;
}

TEST(WlgenKeyDist, UniformIsFlat)
{
    const std::uint64_t n = 64;
    const wlgen::UniformGenerator gen(n);
    const auto freq = empiricalFrequencies(gen, n, 128000);
    for (std::uint64_t r = 0; r < n; ++r)
        EXPECT_NEAR(freq[r], 1.0 / n, 0.25 / n) << "rank " << r;
}

TEST(WlgenKeyDist, HotSetConcentratesDraws)
{
    const std::uint64_t n = 1000;
    const wlgen::HotSetGenerator gen(n, 0.1, 0.9);
    EXPECT_EQ(gen.hotKeys(), 100u);
    const auto freq = empiricalFrequencies(gen, n, 100000);
    double hot = 0;
    for (std::uint64_t r = 0; r < gen.hotKeys(); ++r)
        hot += freq[r];
    EXPECT_NEAR(hot, 0.9, 0.02);
}

TEST(WlgenKeyDist, FixedSeedStreamsAreIdentical)
{
    const GenSpec spec = GenSpec::parse("dist=zipf,theta=0.8");
    const auto gen = wlgen::makeKeyGenerator(spec);
    Random a(123), b(123), c(124);
    bool any_differ = false;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t ra = gen->nextRank(a);
        EXPECT_EQ(ra, gen->nextRank(b));
        any_differ = any_differ || ra != gen->nextRank(c);
    }
    EXPECT_TRUE(any_differ);
}

// ---------------------------------------------------------------------
// The generated workload end to end, on the Workload interface.
// ---------------------------------------------------------------------

TEST(WlgenWorkload, RegistryExposesGen)
{
    EXPECT_EQ(parseWorkload("gen"), WorkloadKind::Generated);
    EXPECT_EQ(parseWorkload("GEN"), WorkloadKind::Generated);
    EXPECT_STREQ(toString(WorkloadKind::Generated), "GEN");
    EXPECT_STREQ(workloadInfo(WorkloadKind::Generated).cliName, "gen");
    // gen is not a paper workload; Table 2 stays exactly six.
    EXPECT_EQ(allPaperWorkloads().size(), 6u);
}

TEST(WlgenWorkload, InvariantsHoldAndSchemesAgree)
{
    const GenSpec spec = smallSpec();
    GenRun sw(spec, LogScheme::PMEM, smallParams());
    GenRun atom(spec, LogScheme::ATOM, smallParams());
    GenRun proteus(spec, LogScheme::Proteus, smallParams());

    const std::string err =
        proteus.wl->checkInvariants(proteus.heap->volatileImage());
    EXPECT_TRUE(err.empty()) << err;

    const std::string ref = sw.wl->serialize(sw.heap->volatileImage());
    EXPECT_FALSE(ref.empty());
    EXPECT_EQ(ref, atom.wl->serialize(atom.heap->volatileImage()));
    EXPECT_EQ(ref,
              proteus.wl->serialize(proteus.heap->volatileImage()));
}

TEST(WlgenWorkload, DeterministicForASeedAndSeedSensitive)
{
    const GenSpec spec = smallSpec();
    GenRun a(spec, LogScheme::Proteus, smallParams());
    GenRun b(spec, LogScheme::Proteus, smallParams());
    EXPECT_EQ(a.wl->serialize(a.heap->volatileImage()),
              b.wl->serialize(b.heap->volatileImage()));
    EXPECT_EQ(a.wl->trace(0).size(), b.wl->trace(0).size());

    WorkloadParams other = smallParams();
    other.seed = 8;
    GenRun c(spec, LogScheme::Proteus, other);
    EXPECT_NE(a.wl->serialize(a.heap->volatileImage()),
              c.wl->serialize(c.heap->volatileImage()));
}

TEST(WlgenWorkload, SpecChangesTheWorkload)
{
    GenRun zipf(smallSpec("dist=zipf,theta=0.99"), LogScheme::Proteus,
                smallParams());
    GenRun uniform(smallSpec("dist=uniform"), LogScheme::Proteus,
                   smallParams());
    EXPECT_NE(zipf.wl->serialize(zipf.heap->volatileImage()),
              uniform.wl->serialize(uniform.heap->volatileImage()));
}

TEST(WlgenWorkload, EveryDistributionRunsClean)
{
    for (const char *delta :
         {"dist=uniform", "dist=zipf,theta=0.99",
          "dist=hot,hot-frac=0.05,hot-ops=0.95"}) {
        GenRun run(smallSpec(delta), LogScheme::Proteus, smallParams());
        const std::string err =
            run.wl->checkInvariants(run.heap->volatileImage());
        EXPECT_TRUE(err.empty()) << delta << ": " << err;
    }
}

TEST(WlgenWorkload, TracesContainTransactions)
{
    GenRun run(smallSpec(), LogScheme::Proteus, smallParams());
    for (unsigned t = 0; t < run.wl->threads(); ++t) {
        const Trace &trace = run.wl->trace(t);
        EXPECT_EQ(trace.countOps(Op::TxBegin),
                  trace.countOps(Op::TxEnd));
        EXPECT_GT(trace.countOps(Op::TxBegin), 0u);
        EXPECT_GT(trace.countOps(Op::Store), 0u);
    }
}

TEST(WlgenWorkload, SingleThreadAndWideValueSupported)
{
    GenRun run(smallSpec("vsize=256,keys=1-8"), LogScheme::PMEM,
               smallParams(1));
    const std::string err =
        run.wl->checkInvariants(run.heap->volatileImage());
    EXPECT_TRUE(err.empty()) << err;
}

// ---------------------------------------------------------------------
// Crash consistency: the oracle over generated workloads.
// ---------------------------------------------------------------------

namespace {

CrashTestOptions
genCampaign()
{
    CrashTestOptions opts;
    opts.schemes = {LogScheme::PMEM, LogScheme::Proteus};
    opts.workloads = {WorkloadKind::Generated};
    opts.gen = GenSpec::parse("keyspace=256,ops=300,keys=1-4");
    opts.threads = 1;
    opts.scale = 1;
    opts.initScale = 1;
    opts.seed = 11;
    opts.mode = CrashMode::Stride;
    opts.autoPoints = 6;
    return opts;
}

} // namespace

TEST(WlgenCrash, OracleCleanAcrossSweep)
{
    std::ostringstream log;
    const CrashTestSummary summary =
        runCrashTests(genCampaign(), log);
    EXPECT_TRUE(summary.ok) << log.str();
    EXPECT_EQ(summary.violations, 0u);
    EXPECT_GT(summary.crashPoints, 0u);
}

TEST(WlgenCrash, BrokenRecoveryIsCaught)
{
    // The oracle must have detection power on generated workloads too:
    // skipping recovery leaks in-flight stores into the checked image.
    CrashTestOptions opts = genCampaign();
    opts.schemes = {LogScheme::Proteus};
    opts.breakRecovery = true;
    opts.autoPoints = 25;
    std::ostringstream log;
    const CrashTestSummary summary = runCrashTests(opts, log);
    EXPECT_FALSE(summary.ok);
    EXPECT_GT(summary.violations, 0u);
}

// ---------------------------------------------------------------------
// Determinism: --jobs levels and cycle skipping cannot change results.
// ---------------------------------------------------------------------

namespace {

BenchOptions
smallBench()
{
    BenchOptions opts;
    opts.scale = 1;
    opts.initScale = 1;
    opts.threads = 2;
    opts.wlSpec = "keyspace=512,ops=300";
    return opts;
}

std::vector<SimJob>
genJobs(const BenchOptions &opts)
{
    std::vector<SimJob> jobs;
    for (LogScheme s : {LogScheme::PMEM, LogScheme::Proteus}) {
        for (const char *delta :
             {"dist=zipf,theta=0.9", "dist=uniform"}) {
            WorkloadExtras extras;
            extras.gen =
                GenSpec::parse(delta, opts.genSpec());
            jobs.push_back(SimJob{opts.makeConfig(), s,
                                  WorkloadKind::Generated, extras,
                                  std::string(toString(s)) + " " +
                                      delta});
        }
    }
    return jobs;
}

} // namespace

TEST(WlgenDeterminism, JobsLevelsProduceIdenticalResults)
{
    const BenchOptions opts = smallBench();
    const std::vector<SimJob> jobs = genJobs(opts);

    const auto serial = ParallelRunner(1).run(jobs, opts);
    const auto parallel = ParallelRunner(4).run(jobs, opts);
    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(serial[i].result.cycles, parallel[i].result.cycles)
            << jobs[i].label;
        EXPECT_EQ(serial[i].result.retiredOps,
                  parallel[i].result.retiredOps)
            << jobs[i].label;
        EXPECT_EQ(serial[i].result.nvmWrites,
                  parallel[i].result.nvmWrites)
            << jobs[i].label;
        EXPECT_EQ(serial[i].result.committedTxs,
                  parallel[i].result.committedTxs)
            << jobs[i].label;
    }
}

TEST(WlgenDeterminism, CycleSkippingDoesNotChangeResults)
{
    BenchOptions fast = smallBench();
    BenchOptions slow = smallBench();
    slow.cycleSkip = false;

    WorkloadExtras extras;
    extras.gen = fast.genSpec();
    const RunResult a =
        runExperiment(fast.makeConfig(), LogScheme::Proteus,
                      WorkloadKind::Generated, fast, extras);
    const RunResult b =
        runExperiment(slow.makeConfig(), LogScheme::Proteus,
                      WorkloadKind::Generated, slow, extras);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retiredOps, b.retiredOps);
    EXPECT_EQ(a.nvmWrites, b.nvmWrites);
    EXPECT_EQ(a.committedTxs, b.committedTxs);
}

TEST(WlgenDeterminism, JsonBytesIdenticalAcrossJobsLevels)
{
    const BenchOptions opts = smallBench();
    const std::vector<SimJob> jobs = genJobs(opts);
    const auto serial = ParallelRunner(1).run(jobs, opts);
    const auto parallel = ParallelRunner(4).run(jobs, opts);

    auto dump = [&](const std::vector<SimJobResult> &results,
                    const std::string &path) {
        std::vector<JsonResultRow> rows;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            // Omit wall-clock: it is host timing, not simulation
            // output, and the JSON writer includes it.
            rows.push_back(JsonResultRow{toString(jobs[i].scheme),
                                         jobs[i].label,
                                         results[i].result, 0.0});
        }
        writeJsonResults(path, rows);
        std::ifstream is(path, std::ios::binary);
        std::ostringstream os;
        os << is.rdbuf();
        std::remove(path.c_str());
        return os.str();
    };
    const std::string dir = ::testing::TempDir();
    EXPECT_EQ(dump(serial, dir + "/wlgen_j1.json"),
              dump(parallel, dir + "/wlgen_j4.json"));
}
