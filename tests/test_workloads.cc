/**
 * @file
 * Functional tests for the Table 2 workloads: the data structures must
 * be real. Each workload runs setup + trace generation and its own
 * invariant checker validates the final state; determinism and
 * scheme-independence (the functional outcome cannot depend on the
 * logging scheme) are checked via canonical serialization.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/logging.hh"
#include "workloads/workload.hh"

using namespace proteus;

namespace {

WorkloadParams
smallParams(unsigned threads = 2)
{
    WorkloadParams p;
    p.threads = threads;
    p.scale = 200;
    p.initScale = 50;
    p.seed = 7;
    return p;
}

struct WlRun
{
    explicit WlRun(WorkloadKind kind, LogScheme scheme,
                 WorkloadParams params)
        : heap(std::make_unique<PersistentHeap>()),
          wl(makeWorkload(kind, *heap, scheme, params))
    {
        wl->setup();
        wl->generateTraces();
    }

    std::unique_ptr<PersistentHeap> heap;
    std::unique_ptr<Workload> wl;
};

class WorkloadFunctional
    : public ::testing::TestWithParam<WorkloadKind>
{
};

} // namespace

TEST_P(WorkloadFunctional, InvariantsHoldAfterOps)
{
    WlRun run(GetParam(), LogScheme::Proteus, smallParams());
    const std::string err =
        run.wl->checkInvariants(run.heap->volatileImage());
    EXPECT_TRUE(err.empty()) << err;
}

TEST_P(WorkloadFunctional, DeterministicForASeed)
{
    WlRun a(GetParam(), LogScheme::Proteus, smallParams());
    WlRun b(GetParam(), LogScheme::Proteus, smallParams());
    EXPECT_EQ(a.wl->serialize(a.heap->volatileImage()),
              b.wl->serialize(b.heap->volatileImage()));
    EXPECT_EQ(a.wl->trace(0).size(), b.wl->trace(0).size());
}

TEST_P(WorkloadFunctional, SchemeDoesNotChangeFunctionalState)
{
    WlRun sw(GetParam(), LogScheme::PMEM, smallParams());
    WlRun atom(GetParam(), LogScheme::ATOM, smallParams());
    WlRun proteus(GetParam(), LogScheme::Proteus, smallParams());
    const std::string ref = sw.wl->serialize(sw.heap->volatileImage());
    EXPECT_EQ(ref, atom.wl->serialize(atom.heap->volatileImage()));
    EXPECT_EQ(ref,
              proteus.wl->serialize(proteus.heap->volatileImage()));
}

TEST_P(WorkloadFunctional, SeedsProduceDifferentHistories)
{
    WorkloadParams p1 = smallParams();
    WorkloadParams p2 = smallParams();
    p2.seed = 8;
    WlRun a(GetParam(), LogScheme::Proteus, p1);
    WlRun b(GetParam(), LogScheme::Proteus, p2);
    EXPECT_NE(a.wl->serialize(a.heap->volatileImage()),
              b.wl->serialize(b.heap->volatileImage()));
}

TEST_P(WorkloadFunctional, TracesContainTransactions)
{
    WlRun run(GetParam(), LogScheme::Proteus, smallParams());
    for (unsigned t = 0; t < run.wl->threads(); ++t) {
        const Trace &trace = run.wl->trace(t);
        EXPECT_EQ(trace.countOps(Op::TxBegin),
                  trace.countOps(Op::TxEnd));
        EXPECT_GT(trace.countOps(Op::TxBegin), 0u);
        EXPECT_GT(trace.countOps(Op::Store), 0u);
    }
}

TEST_P(WorkloadFunctional, SingleThreadSupported)
{
    WlRun run(GetParam(), LogScheme::PMEM, smallParams(1));
    const std::string err =
        run.wl->checkInvariants(run.heap->volatileImage());
    EXPECT_TRUE(err.empty()) << err;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadFunctional,
    ::testing::Values(WorkloadKind::Queue, WorkloadKind::HashMap,
                      WorkloadKind::StringSwap, WorkloadKind::AvlTree,
                      WorkloadKind::BTree, WorkloadKind::RbTree),
    [](const ::testing::TestParamInfo<WorkloadKind> &info) {
        return std::string(toString(info.param));
    });

TEST(LinkedListWorkload, VersionsAdvanceConsistently)
{
    PersistentHeap heap;
    WorkloadParams p = smallParams(1);
    WorkloadExtras extras;
    extras.ll.elementsPerNode = 64;
    auto wl = makeWorkload(WorkloadKind::LinkedList, heap,
                           LogScheme::Proteus, p, extras);
    wl->setup();
    wl->generateTraces();
    EXPECT_TRUE(wl->checkInvariants(heap.volatileImage()).empty());
}

TEST(WorkloadFactory, ParsesNames)
{
    EXPECT_EQ(parseWorkload("QE"), WorkloadKind::Queue);
    EXPECT_EQ(parseWorkload("rbtree"), WorkloadKind::RbTree);
    EXPECT_THROW(parseWorkload("nope"), FatalError);
    EXPECT_EQ(allPaperWorkloads().size(), 6u);
}
