/**
 * @file
 * Tests for the persistency-order checker (src/analysis): the per-rule
 * detection logic against synthetic event feeds, the per-scheme arming
 * table, determinism of the full-machine verdict (byte-identical JSON
 * at any --jobs level and with cycle skipping on or off), and the
 * mutation campaign proving every armed rule catches its own injected
 * violation.
 */

#include <gtest/gtest.h>

#include "analysis/persist_checker.hh"
#include "analysis/rules.hh"
#include "harness/check_runner.hh"

namespace proteus {
namespace {

using analysis::PersistChecker;
using analysis::Rule;

// ---------------------------------------------------------------------
// Arming table
// ---------------------------------------------------------------------

TEST(AnalysisRules, NamesAreStableAndKebabCase)
{
    EXPECT_STREQ("log-before-data", toString(Rule::LogBeforeData));
    EXPECT_STREQ("entries-before-txend",
                 toString(Rule::EntriesBeforeTxEnd));
    EXPECT_STREQ("flashclear-after-commit",
                 toString(Rule::FlashClearAfterCommit));
    EXPECT_STREQ("fifo-per-address", toString(Rule::FifoPerAddress));
    EXPECT_STREQ("durable-by-commit", toString(Rule::DurableByCommit));
    EXPECT_STREQ("lock-discipline", toString(Rule::LockDiscipline));
}

TEST(AnalysisRules, ArmingTablePerScheme)
{
    const auto armed = [](LogScheme s, bool history) {
        return analysis::rulesForScheme(
            s, /*adr=*/s != LogScheme::PMEMPCommit, history);
    };
    const auto idx = [](Rule r) { return static_cast<unsigned>(r); };

    // Proteus arms everything (the mutation campaign relies on it).
    const auto proteus = armed(LogScheme::Proteus, true);
    for (unsigned r = 0; r < analysis::numRules; ++r)
        EXPECT_TRUE(proteus[r]) << "rule " << r;

    // Only Proteus's LWR path flash-clears the LPQ.
    EXPECT_FALSE(armed(LogScheme::ProteusNoLWR,
                       true)[idx(Rule::FlashClearAfterCommit)]);
    EXPECT_FALSE(armed(LogScheme::ATOM,
                       true)[idx(Rule::FlashClearAfterCommit)]);

    // Software schemes need the write history to classify stores.
    EXPECT_TRUE(armed(LogScheme::PMEM, true)[idx(Rule::LogBeforeData)]);
    EXPECT_FALSE(
        armed(LogScheme::PMEM, false)[idx(Rule::LogBeforeData)]);
    // No log, nothing to order against data.
    EXPECT_FALSE(
        armed(LogScheme::PMEMNoLog, true)[idx(Rule::LogBeforeData)]);
    EXPECT_FALSE(armed(LogScheme::PMEMNoLog,
                       true)[idx(Rule::EntriesBeforeTxEnd)]);

    // The MC-stream and lock rules are scheme-independent.
    for (LogScheme s :
         {LogScheme::PMEM, LogScheme::PMEMPCommit, LogScheme::PMEMNoLog,
          LogScheme::ATOM, LogScheme::Proteus,
          LogScheme::ProteusNoLWR}) {
        EXPECT_TRUE(armed(s, false)[idx(Rule::FifoPerAddress)]);
        EXPECT_TRUE(armed(s, false)[idx(Rule::DurableByCommit)]);
        EXPECT_TRUE(armed(s, false)[idx(Rule::LockDiscipline)]);
    }
}

// ---------------------------------------------------------------------
// Per-rule detection on synthetic event feeds
// ---------------------------------------------------------------------

/** A Proteus checker (every rule armed, ADR semantics). */
PersistChecker
makeChecker()
{
    return PersistChecker(LogScheme::Proteus, /*adr=*/true,
                          "synthetic");
}

std::uint64_t
ruleViolations(const PersistChecker &c, Rule r)
{
    return c.outcome().rules[static_cast<unsigned>(r)].violations;
}

TEST(AnalysisRules, LogBeforeDataFiresWithoutCoverage)
{
    PersistChecker c = makeChecker();
    c.txBegin(0, 1, 10);
    c.storeRetired(0, 1, 0x1000, 8, true, 7, 11);
    c.storeReleased(0, 1, 0x1000, 8, 7, 12);
    // A data write covering the granule is accepted at the MC while
    // the transaction is in flight and no log entry is durable.
    c.dataWriteAccepted(0, 1, 0x1000, 1, false, nullptr, 13);
    EXPECT_EQ(1u, ruleViolations(c, Rule::LogBeforeData));
    EXPECT_FALSE(c.outcome().pass());
    EXPECT_EQ("synthetic", c.outcome().repro);
}

TEST(AnalysisRules, LogBeforeDataPassesWithDurableEntry)
{
    PersistChecker c = makeChecker();
    c.txBegin(0, 1, 10);
    c.storeRetired(0, 1, 0x1000, 8, true, 7, 11);
    c.logWriteAccepted(0, 1, 0x9000, logAlign(0x1000), 1, true, 12);
    c.storeReleased(0, 1, 0x1000, 8, 7, 13);
    c.dataWriteAccepted(0, 1, 0x1000, 1, false, nullptr, 14);
    EXPECT_EQ(0u, ruleViolations(c, Rule::LogBeforeData));
    // The rule was exercised, not vacuously skipped.
    EXPECT_GT(c.outcome()
                  .rules[static_cast<unsigned>(Rule::LogBeforeData)]
                  .checks,
              0u);
}

TEST(AnalysisRules, EntriesBeforeTxEndFiresOnMissingAck)
{
    PersistChecker c = makeChecker();
    c.txBegin(0, 1, 10);
    c.logCreated(0, 1, 11);
    c.logCreated(0, 1, 12);
    c.logAcked(0, 1, 11, 13);
    c.durablePoint(0, 1, 14);   // one record still un-acked
    EXPECT_EQ(1u, ruleViolations(c, Rule::EntriesBeforeTxEnd));

    PersistChecker ok = makeChecker();
    ok.txBegin(0, 1, 10);
    ok.logCreated(0, 1, 11);
    ok.logAcked(0, 1, 11, 12);
    ok.durablePoint(0, 1, 13);
    EXPECT_EQ(0u, ruleViolations(ok, Rule::EntriesBeforeTxEnd));
}

TEST(AnalysisRules, FlashClearBeforeDurableCommitFires)
{
    PersistChecker c = makeChecker();
    c.txBegin(0, 1, 10);
    c.lpqFlashCleared(0, 1, 3, 11);     // before the durable point
    c.durablePoint(0, 1, 12);
    c.lpqFlashCleared(0, 1, 3, 13);     // after: fine
    c.txEndMarker(0, 1, analysis::MarkerOp::Held, 14);
    EXPECT_EQ(1u, ruleViolations(c, Rule::FlashClearAfterCommit));
}

TEST(AnalysisRules, FifoPerAddressFiresOnReorder)
{
    PersistChecker c = makeChecker();
    c.nvmWriteIssued(false, 0x2000, 5, 10);
    c.nvmWriteIssued(false, 0x2000, 5, 11);     // duplicate/reorder
    EXPECT_EQ(1u, ruleViolations(c, Rule::FifoPerAddress));

    PersistChecker ok = makeChecker();
    ok.nvmWriteIssued(false, 0x2000, 5, 10);
    ok.nvmWriteIssued(false, 0x2040, 3, 11);    // other block: own order
    ok.nvmWriteIssued(true, 0x2000, 3, 12);     // other queue: own order
    ok.nvmWriteIssued(false, 0x2000, 6, 13);
    ok.nvmWritePersisted(false, 0x2000, 5, 14);
    ok.nvmWritePersisted(false, 0x2000, 6, 15);
    EXPECT_EQ(0u, ruleViolations(ok, Rule::FifoPerAddress));
}

TEST(AnalysisRules, DurableByCommitFiresOnMissingAcceptance)
{
    PersistChecker c = makeChecker();
    c.txBegin(0, 1, 10);
    c.storeRetired(0, 1, 0x3000, 8, true, 9, 11);
    c.durablePoint(0, 1, 12);   // no MC acceptance of the block
    EXPECT_EQ(1u, ruleViolations(c, Rule::DurableByCommit));

    PersistChecker ok = makeChecker();
    ok.txBegin(0, 1, 10);
    ok.storeRetired(0, 1, 0x3000, 8, true, 9, 11);
    ok.logWriteAccepted(0, 1, 0x9000, logAlign(0x3000), 1, true, 12);
    ok.storeReleased(0, 1, 0x3000, 8, 9, 13);
    ok.dataWriteAccepted(0, 1, 0x3000, 1, false, nullptr, 14);
    ok.durablePoint(0, 1, 15);
    EXPECT_EQ(0u, ruleViolations(ok, Rule::DurableByCommit));
}

TEST(AnalysisRules, LockDisciplineFiresOnUnlockedCrossCoreWrite)
{
    PersistChecker c = makeChecker();
    c.txBegin(0, 1, 10);
    c.txBegin(1, 2, 10);
    c.storeRetired(0, 1, 0x4000, 8, true, 1, 11);
    c.storeRetired(1, 2, 0x4000, 8, true, 1, 12);   // no locks at all
    EXPECT_EQ(1u, ruleViolations(c, Rule::LockDiscipline));

    PersistChecker ok = makeChecker();
    ok.txBegin(0, 1, 10);
    ok.txBegin(1, 2, 10);
    ok.lockGranted(0, 1, 0x8000, 10);
    ok.storeRetired(0, 1, 0x4000, 8, true, 1, 11);
    ok.lockReleased(0, 0x8000, 12);
    ok.lockGranted(1, 2, 0x8000, 13);
    ok.storeRetired(1, 2, 0x4000, 8, true, 1, 14);  // same lock held
    EXPECT_EQ(0u, ruleViolations(ok, Rule::LockDiscipline));
}

TEST(AnalysisRules, LockDisciplineAcceptsCommitOrderedHandoff)
{
    // Disjoint locksets are fine when the first writer's transaction
    // committed before the second began: the serialization order is
    // the happens-before edge (node freed in tx 1, re-allocated and
    // rewritten in tx 2 under a different lock).
    PersistChecker c = makeChecker();
    c.txBegin(0, 1, 10);
    c.lockGranted(0, 1, 0x8000, 10);
    c.storeRetired(0, 1, 0x4000, 8, true, 1, 11);
    c.lockReleased(0, 0x8000, 12);
    c.txCommit(0, 1, 13);
    c.txBegin(1, 2, 20);
    c.lockGranted(1, 2, 0x9000, 20);    // different lock
    c.storeRetired(1, 2, 0x4000, 8, true, 1, 21);
    EXPECT_EQ(0u, ruleViolations(c, Rule::LockDiscipline));
    EXPECT_EQ(1u, c.outcome().rules[
        static_cast<unsigned>(Rule::LockDiscipline)].checks);

    // Overlap kills the excuse: same hand-off, but the second tx
    // began before the first committed.
    PersistChecker bad = makeChecker();
    bad.txBegin(0, 1, 10);
    bad.txBegin(1, 2, 11);              // overlaps tx 1
    bad.lockGranted(0, 1, 0x8000, 10);
    bad.storeRetired(0, 1, 0x4000, 8, true, 1, 12);
    bad.lockReleased(0, 0x8000, 13);
    bad.txCommit(0, 1, 14);
    bad.lockGranted(1, 2, 0x9000, 15);
    bad.storeRetired(1, 2, 0x4000, 8, true, 1, 16);
    EXPECT_EQ(1u, ruleViolations(bad, Rule::LockDiscipline));
}

TEST(AnalysisRules, CommitPrunesWriterState)
{
    PersistChecker c = makeChecker();
    c.txBegin(0, 1, 10);
    c.storeRetired(0, 1, 0x5000, 8, true, 1, 11);
    c.logWriteAccepted(0, 1, 0x9000, logAlign(0x5000), 1, true, 12);
    c.storeReleased(0, 1, 0x5000, 8, 1, 13);
    c.dataWriteAccepted(0, 1, 0x5000, 1, false, nullptr, 14);
    c.durablePoint(0, 1, 15);
    c.txCommit(0, 1, 16);
    // A later unrelated acceptance of the same granule must not charge
    // the committed transaction.
    c.dataWriteAccepted(0, 0, 0x5000, 2, false, nullptr, 20);
    EXPECT_EQ(0u, c.outcome().totalViolations);
}

TEST(AnalysisRules, ViolationReportsAreCapped)
{
    PersistChecker c = makeChecker();
    for (unsigned i = 0; i < 2 * analysis::reportCap; ++i) {
        const Addr block = 0x10000 + Addr{i} * blockSize;
        c.nvmWriteIssued(false, block, 5, 10);
        c.nvmWriteIssued(false, block, 5, 11);
    }
    const analysis::CheckOutcome out = c.outcome();
    EXPECT_EQ(2 * analysis::reportCap, out.totalViolations);
    EXPECT_EQ(analysis::reportCap, out.violations.size());
}

// ---------------------------------------------------------------------
// Full-machine determinism and the mutation campaign (e2e tier)
// ---------------------------------------------------------------------

BenchOptions
checkOpts()
{
    BenchOptions opts;
    opts.scale = 1600;      // small but exercises every protocol path
    opts.initScale = 100;
    opts.threads = 2;
    opts.seed = 1;
    return opts;
}

std::vector<LogScheme>
allSchemes()
{
    return {LogScheme::PMEM,      LogScheme::PMEMPCommit,
            LogScheme::PMEMNoLog, LogScheme::ATOM,
            LogScheme::Proteus,   LogScheme::ProteusNoLWR};
}

TEST(AnalysisDeterminism, CleanMachinePassesAllSchemesAndWorkloads)
{
    BenchOptions opts = checkOpts();
    const auto rows = runCheckBatch(
        allSchemes(), {WorkloadKind::Queue, WorkloadKind::HashMap},
        opts);
    ASSERT_EQ(12u, rows.size());
    for (const CheckRow &row : rows) {
        EXPECT_TRUE(row.outcome.pass())
            << formatCheckReport(row);
        EXPECT_TRUE(row.run.finished);
        EXPECT_GT(row.outcome.eventsSeen, 0u);
        // Armed rules really evaluated (not vacuously passing).
        // FifoPerAddress and LockDiscipline count only same-block
        // re-issues / cross-core rewrites, which a small run may not
        // produce — the mutation campaign proves those fire.
        for (unsigned r = 0; r < analysis::numRules; ++r) {
            if (!row.outcome.armed[r] ||
                r == static_cast<unsigned>(Rule::LockDiscipline) ||
                r == static_cast<unsigned>(Rule::FifoPerAddress))
                continue;
            EXPECT_GT(row.outcome.rules[r].checks, 0u)
                << toString(row.scheme) << " rule " << r;
        }
    }
}

TEST(AnalysisDeterminism, JsonByteIdenticalAcrossJobs)
{
    BenchOptions opts = checkOpts();
    opts.jobs = 1;
    const std::string json1 =
        checkRowsJson(runCheckBatch(allSchemes(),
                                    {WorkloadKind::Queue}, opts));
    opts.jobs = 4;
    const std::string json4 =
        checkRowsJson(runCheckBatch(allSchemes(),
                                    {WorkloadKind::Queue}, opts));
    EXPECT_EQ(json1, json4);
}

TEST(AnalysisDeterminism, JsonByteIdenticalAcrossCycleSkip)
{
    BenchOptions opts = checkOpts();
    opts.jobs = 1;
    opts.cycleSkip = true;
    const std::string skip =
        checkRowsJson(runCheckBatch(allSchemes(),
                                    {WorkloadKind::Queue}, opts));
    opts.cycleSkip = false;
    const std::string noskip =
        checkRowsJson(runCheckBatch(allSchemes(),
                                    {WorkloadKind::Queue}, opts));
    EXPECT_EQ(skip, noskip);
}

TEST(AnalysisMutation, EveryArmedRuleFiresOnProteus)
{
    // Proteus arms all six rules, so one campaign covers the full set.
    BenchOptions opts = checkOpts();
    const auto rows = runMutationCampaign(
        LogScheme::Proteus, WorkloadKind::Queue, opts,
        /*mutate_seed=*/1);
    ASSERT_EQ(analysis::numRules, rows.size());
    for (const MutationRow &row : rows) {
        EXPECT_GT(row.mutations, 0u)
            << "mutator never perturbed an edge for "
            << toString(row.rule);
        EXPECT_TRUE(row.fired)
            << "rule " << toString(row.rule)
            << " missed its injected violation";
    }
    EXPECT_TRUE(allFired(rows));
}

TEST(AnalysisMutation, SoftwareSchemeCampaignFires)
{
    BenchOptions opts = checkOpts();
    const auto rows = runMutationCampaign(
        LogScheme::PMEM, WorkloadKind::Queue, opts, /*mutate_seed=*/2);
    ASSERT_EQ(4u, rows.size());     // no marker/LPQ rules under PMEM
    for (const MutationRow &row : rows)
        EXPECT_TRUE(row.fired) << toString(row.rule);
}

} // namespace
} // namespace proteus
