/**
 * @file
 * TraceCache behavior (build-once sharing, history upgrade, concurrent
 * lookups) and the tentpole's core guarantee: cached and uncached
 * execution paths produce bit-identical results, from single
 * experiments up to whole crashtest campaigns (JSON byte-for-byte).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "crashtest/crash_tester.hh"
#include "harness/experiments.hh"
#include "harness/system.hh"
#include "harness/trace_cache.hh"

using namespace proteus;

namespace {

TraceBundleKey
smallKey(LogScheme scheme, std::uint64_t seed = 1)
{
    TraceBundleKey key;
    key.kind = WorkloadKind::Queue;
    key.scheme = scheme;
    key.params.threads = 2;
    key.params.scale = 2000;
    key.params.initScale = 200;
    key.params.seed = seed;
    return key;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(TraceCache, BuildsOnceAndShares)
{
    TraceCache cache;
    const TraceBundleKey key = smallKey(LogScheme::Proteus);

    const auto a = cache.get(key);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.size(), 1u);

    const auto b = cache.get(key);
    EXPECT_EQ(a.get(), b.get());    // the same immutable bundle
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);

    // A different scheme is a different key.
    cache.get(smallKey(LogScheme::ATOM));
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.size(), 2u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

TEST(TraceCache, HistoryUpgradeReplacesEntry)
{
    TraceCache cache;
    const TraceBundleKey key = smallKey(LogScheme::PMEM);

    const auto plain = cache.get(key, false);
    EXPECT_EQ(plain->history, nullptr);

    const auto with = cache.get(key, true);
    ASSERT_NE(with->history, nullptr);
    EXPECT_FALSE(with->history->empty());

    // The upgraded bundle replaces the entry; later plain lookups get
    // the history-carrying one for free.
    const auto again = cache.get(key, false);
    EXPECT_EQ(again.get(), with.get());
}

TEST(TraceCache, ConcurrentLookupsBuildOnce)
{
    TraceCache cache;
    const TraceBundleKey key = smallKey(LogScheme::Proteus, 99);

    std::vector<std::shared_ptr<const TraceBundle>> results(8);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < results.size(); ++i) {
        threads.emplace_back(
            [&cache, &key, &results, i]() { results[i] = cache.get(key); });
    }
    for (std::thread &t : threads)
        t.join();

    for (const auto &r : results) {
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r.get(), results[0].get());
    }
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), results.size() - 1);
}

TEST(TraceCache, CachedExperimentMatchesUncached)
{
    BenchOptions opts;
    opts.scale = 2000;
    opts.initScale = 200;
    opts.threads = 2;

    for (const LogScheme scheme :
         {LogScheme::PMEM, LogScheme::ATOM, LogScheme::Proteus}) {
        SCOPED_TRACE(toString(scheme));
        opts.traceCache = true;
        const RunResult cached = runExperiment(
            baselineConfig(), scheme, WorkloadKind::Queue, opts);
        opts.traceCache = false;
        const RunResult uncached = runExperiment(
            baselineConfig(), scheme, WorkloadKind::Queue, opts);

        EXPECT_EQ(cached.cycles, uncached.cycles);
        EXPECT_EQ(cached.retiredOps, uncached.retiredOps);
        EXPECT_EQ(cached.nvmWrites, uncached.nvmWrites);
        EXPECT_EQ(cached.nvmReads, uncached.nvmReads);
        EXPECT_EQ(cached.committedTxs, uncached.committedTxs);
        EXPECT_EQ(cached.logWritesDropped, uncached.logWritesDropped);
        EXPECT_EQ(cached.frontendStallCycles,
                  uncached.frontendStallCycles);
        EXPECT_EQ(cached.lltMissRate, uncached.lltMissRate);
    }
}

TEST(TraceCache, CrashtestJsonBitIdenticalCachedVsUncached)
{
    CrashTestOptions opts;
    opts.schemes = {LogScheme::Proteus, LogScheme::PMEM,
                    LogScheme::ATOM};
    opts.workloads = {WorkloadKind::Queue};
    opts.scale = 2000;
    opts.initScale = 200;
    opts.autoPoints = 6;

    const std::string cached_path =
        testing::TempDir() + "ct_cached.json";
    const std::string uncached_path =
        testing::TempDir() + "ct_uncached.json";

    std::ostringstream sink;
    opts.useTraceCache = true;
    opts.jsonPath = cached_path;
    const CrashTestSummary cached = runCrashTests(opts, sink);
    opts.useTraceCache = false;
    opts.jsonPath = uncached_path;
    const CrashTestSummary uncached = runCrashTests(opts, sink);

    EXPECT_TRUE(cached.ok);
    EXPECT_TRUE(uncached.ok);
    EXPECT_EQ(cached.crashPoints, uncached.crashPoints);

    const std::string a = slurp(cached_path);
    const std::string b = slurp(uncached_path);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);    // byte-for-byte identical rows

    std::remove(cached_path.c_str());
    std::remove(uncached_path.c_str());
}
