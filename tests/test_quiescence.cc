/**
 * @file
 * Quiescence-driven cycle skipping: the wake-hint contract at the
 * kernel level (never skips past an event, clamps to interval-stats
 * boundaries and run ends, stays put while any component is busy) and
 * the invisibility invariant end to end (every scheme x workload pair
 * produces bit-identical stats and byte-identical crashtest JSON with
 * skipping on and off).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "crashtest/crash_tester.hh"
#include "harness/experiments.hh"
#include "harness/system.hh"
#include "harness/trace_cache.hh"
#include "sim/interval_stats.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

using namespace proteus;

namespace {

/**
 * A component that is idle until an event pokes it, then busy for a
 * fixed number of cycles. observedCycles counts every cycle it lived
 * through — ticked or skipped — and must equal sim.now() at the end.
 */
class SleepyDevice : public Ticked
{
  public:
    explicit SleepyDevice(std::string name) : _name(std::move(name)) {}

    void
    tick(Tick) override
    {
        ++observedCycles;
        if (busyLeft > 0) {
            --busyLeft;
            ++work;
        }
    }

    Tick
    nextWake(Tick now) override
    {
        return busyLeft > 0 ? now : maxTick;
    }

    void
    accountSkipped(Tick from, Tick to) override
    {
        observedCycles += to - from;
    }

    const std::string &componentName() const override { return _name; }

    Tick busyLeft = 0;
    std::uint64_t observedCycles = 0;
    std::uint64_t work = 0;

  private:
    std::string _name;
};

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

std::string
dumpStats(FullSystem &system)
{
    std::ostringstream os;
    system.sim().statsRegistry().dumpJson(os);
    return os.str();
}

} // namespace

TEST(Quiescence, NeverSkipsPastScheduledEvent)
{
    Simulator sim;
    SleepyDevice d("d");
    sim.addTicked(&d);

    Tick firedAt = maxTick;
    sim.schedule(500, [&]() { firedAt = sim.now(); d.busyLeft = 3; });
    sim.run(1000);

    EXPECT_EQ(firedAt, 500u);           // event executed on its cycle
    EXPECT_EQ(sim.now(), 1000u);
    EXPECT_EQ(d.work, 3u);              // post-event busy span ran
    EXPECT_EQ(d.observedCycles, 1000u); // accounting covers the skips
    // cycle 0, then the busy span: the event fires before the tick on
    // cycle 500, so ticks run at 500, 501, 502 — 4 steps in total
    EXPECT_EQ(sim.kernelSteps(), 4u);
    EXPECT_EQ(sim.skippedCycles(), 996u);
}

TEST(Quiescence, DefaultTickedIsConservativelyBusy)
{
    // A component that does not implement the protocol must block all
    // skipping: the default nextWake() is "busy now".
    class Plain : public Ticked
    {
      public:
        void tick(Tick) override { ++ticks; }
        const std::string &componentName() const override { return _n; }
        unsigned ticks = 0;

      private:
        std::string _n = "plain";
    };

    Simulator sim;
    Plain p;
    sim.addTicked(&p);
    sim.run(200);
    EXPECT_EQ(p.ticks, 200u);
    EXPECT_EQ(sim.kernelSteps(), 200u);
    EXPECT_EQ(sim.skippedCycles(), 0u);
}

TEST(Quiescence, OneBusyComponentBlocksSkipping)
{
    // Backpressure shape: a quiescent device cannot be skipped while a
    // sibling still reports "now" (e.g. a core spinning on a full WPQ).
    Simulator sim;
    SleepyDevice idle("idle");
    SleepyDevice busy("busy");
    busy.busyLeft = 150;
    sim.addTicked(&idle);
    sim.addTicked(&busy);
    sim.run(200);

    // 150 busy cycles tick every component; the tail is one skip.
    EXPECT_EQ(sim.kernelSteps(), 150u);
    EXPECT_EQ(sim.skippedCycles(), 50u);
    EXPECT_EQ(idle.observedCycles, 200u);
    EXPECT_EQ(busy.observedCycles, 200u);
    EXPECT_EQ(busy.work, 150u);
}

TEST(Quiescence, ClampsToIntervalStatsBoundaries)
{
    // The sampler self-schedules its boundary events, so skipping must
    // land on every exact boundary; rows match the unskipped kernel
    // (same cycles, same deltas, including the final partial row).
    Simulator sim;
    stats::Scalar a(sim.statsRegistry(), "a", "");
    SleepyDevice d("d");
    sim.addTicked(&d);

    IntervalStatsSampler sampler(sim, 10);
    sampler.start();
    sim.schedule(5, [&]() { a += 1; });
    sim.schedule(15, [&]() { a += 2; });
    sim.schedule(32, [&]() { a += 3; });
    sim.run(35);
    sampler.finish();

    EXPECT_LT(sim.kernelSteps(), 35u);  // skipping actually engaged
    const auto &rows = sampler.rows();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].cycle, 10u);
    EXPECT_EQ(rows[1].cycle, 20u);
    EXPECT_EQ(rows[2].cycle, 30u);
    EXPECT_EQ(rows[3].cycle, 35u);
    EXPECT_DOUBLE_EQ(rows[0].deltas[0], 1.0);
    EXPECT_DOUBLE_EQ(rows[1].deltas[0], 2.0);
    EXPECT_DOUBLE_EQ(rows[2].deltas[0], 0.0);
    EXPECT_DOUBLE_EQ(rows[3].deltas[0], 3.0);
}

TEST(Quiescence, ChunkedRunsMatchOneRun)
{
    // Crash injection steps the machine in runFor() chunks whose ends
    // are exact cycle numbers; a skip must clamp to the chunk end.
    auto build = [](Simulator &sim, SleepyDevice &d) {
        sim.addTicked(&d);
        sim.schedule(40, [&]() { d.busyLeft = 5; });
        sim.schedule(90, [&]() { d.busyLeft = 2; });
    };

    Simulator one;
    SleepyDevice dOne("d");
    build(one, dOne);
    one.run(100);

    Simulator chunked;
    SleepyDevice dChunked("d");
    build(chunked, dChunked);
    chunked.run(37);
    EXPECT_EQ(chunked.now(), 37u);      // skip clamped to the chunk end
    chunked.run(63);

    EXPECT_EQ(one.now(), chunked.now());
    EXPECT_EQ(dOne.work, dChunked.work);
    EXPECT_EQ(dOne.observedCycles, dChunked.observedCycles);
    EXPECT_EQ(dChunked.observedCycles, 100u);
}

TEST(Quiescence, RunUntilSeesPredicateFlipAtActivityBoundary)
{
    // The predicate can only flip when state changes, i.e. on a ticked
    // cycle; with skipping the kernel must stop on the same cycle the
    // unskipped kernel would.
    auto run = [](bool skip) {
        Simulator sim;
        sim.setCycleSkip(skip);
        SleepyDevice d("d");
        sim.addTicked(&d);
        unsigned counter = 0;
        sim.schedule(100, [&]() { ++counter; });
        sim.schedule(200, [&]() { ++counter; });
        const bool ok =
            sim.runUntil([&]() { return counter >= 2; }, 1000);
        EXPECT_TRUE(ok);
        return sim.now();
    };
    EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------
// End to end: the invisibility invariant over the full machine. Every
// scheme x {QE, HM} cell must produce a bit-identical stats registry
// (every counter, distribution, and average — a superset of the golden
// rows) and identical RunResult counters with skipping on and off.
// ---------------------------------------------------------------------

TEST(Quiescence, AllSchemesBitIdenticalWithAndWithoutSkipping)
{
    const std::vector<LogScheme> schemes{
        LogScheme::PMEM,    LogScheme::PMEMPCommit,
        LogScheme::PMEMNoLog, LogScheme::ATOM,
        LogScheme::Proteus, LogScheme::ProteusNoLWR,
    };
    const std::vector<WorkloadKind> workloads{WorkloadKind::Queue,
                                              WorkloadKind::HashMap};

    WorkloadParams params;
    params.threads = 2;
    params.scale = 4000;
    params.initScale = 200;
    params.seed = 1;

    for (const LogScheme scheme : schemes) {
        for (const WorkloadKind kind : workloads) {
            SCOPED_TRACE(std::string(toString(scheme)) + " / " +
                         toString(kind));
            TraceBundleKey key;
            key.kind = kind;
            key.scheme = scheme;
            key.params = params;
            const auto bundle = TraceCache::global().get(key);

            SystemConfig cfg = baselineConfig();
            cfg.logging.scheme = scheme;
            cfg.memCtrl.adr = scheme != LogScheme::PMEMPCommit;

            cfg.cycleSkip = true;
            FullSystem skipping(cfg, bundle);
            const RunResult rs = skipping.run();

            cfg.cycleSkip = false;
            FullSystem stepping(cfg, bundle);
            const RunResult rn = stepping.run();

            ASSERT_TRUE(rs.finished);
            ASSERT_TRUE(rn.finished);
            EXPECT_EQ(rs.cycles, rn.cycles);
            EXPECT_EQ(rs.retiredOps, rn.retiredOps);
            EXPECT_EQ(rs.nvmWrites, rn.nvmWrites);
            EXPECT_EQ(rs.nvmReads, rn.nvmReads);
            EXPECT_EQ(rs.committedTxs, rn.committedTxs);
            EXPECT_EQ(rs.logWritesDropped, rn.logWritesDropped);
            EXPECT_EQ(rs.frontendStallCycles, rn.frontendStallCycles);
            EXPECT_DOUBLE_EQ(rs.cpi.persistStall, rn.cpi.persistStall);
            EXPECT_DOUBLE_EQ(rs.cpi.lockWait, rn.cpi.lockWait);
            EXPECT_EQ(dumpStats(skipping), dumpStats(stepping));

            // Skipping must also have engaged, or this test proves
            // nothing about it.
            EXPECT_GT(skipping.sim().skippedCycles(), 0u);
            EXPECT_EQ(stepping.sim().skippedCycles(), 0u);
            EXPECT_EQ(skipping.sim().kernelSteps() +
                          skipping.sim().skippedCycles(),
                      rs.cycles);
        }
    }
}

TEST(Quiescence, CrashtestJsonByteIdenticalWithAndWithoutSkipping)
{
    const std::string pathOn = ::testing::TempDir() + "crash_skip.json";
    const std::string pathOff =
        ::testing::TempDir() + "crash_noskip.json";

    CrashTestOptions opts;
    opts.schemes = {LogScheme::PMEM, LogScheme::Proteus};
    opts.workloads = {WorkloadKind::Queue};
    opts.threads = 1;
    opts.scale = 250;
    opts.initScale = 100;
    opts.seed = 11;
    opts.mode = CrashMode::Stride;
    opts.autoPoints = 4;

    opts.cycleSkip = true;
    opts.jsonPath = pathOn;
    std::ostringstream osOn;
    const CrashTestSummary on = runCrashTests(opts, osOn);

    opts.cycleSkip = false;
    opts.jsonPath = pathOff;
    std::ostringstream osOff;
    const CrashTestSummary off = runCrashTests(opts, osOff);

    EXPECT_TRUE(on.ok);
    EXPECT_TRUE(off.ok);
    EXPECT_EQ(on.crashPoints, off.crashPoints);

    const std::string jsonOn = slurp(pathOn);
    ASSERT_FALSE(jsonOn.empty());
    EXPECT_EQ(jsonOn, slurp(pathOff));
    std::remove(pathOn.c_str());
    std::remove(pathOff.c_str());
}
