/**
 * @file
 * The crash-consistency validation subsystem, tested on itself:
 * the commit oracle's per-byte verdicts, crash injection over full
 * systems, campaign determinism across --jobs levels, and — crucially
 * — that a deliberately broken recovery IS caught. A checker that
 * cannot flag a missing undo pass proves nothing when it stays green.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "crashtest/commit_oracle.hh"
#include "crashtest/crash_tester.hh"
#include "harness/system.hh"
#include "heap/persistent_heap.hh"

using namespace proteus;

namespace {

constexpr Addr dataBase = PersistentHeap::persistentBase;

/** Campaign options shared by the system-level tests. */
CrashTestOptions
smallCampaign()
{
    CrashTestOptions opts;
    opts.schemes = {LogScheme::PMEM, LogScheme::ATOM, LogScheme::Proteus};
    opts.workloads = {WorkloadKind::Queue};
    opts.threads = 1;
    opts.scale = 250;
    opts.initScale = 100;
    opts.seed = 11;
    opts.mode = CrashMode::Stride;
    opts.autoPoints = 6;
    return opts;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------
// CommitOracle unit tests: histories built by hand, images checked
// against them. Two transactions on one thread: tx 100 commits value
// 0x11.. over zeros, tx 101 then writes 0x22.. and is in flight.
// ---------------------------------------------------------------------

namespace {

void
recordTwoTxHistory(CommitOracle &oracle)
{
    oracle.onTxBegin(0, 100);
    oracle.onStore(0, 100, dataBase, 8, 0, 0x1111111111111111ull,
                   ObservedWrite::Logged);
    oracle.onTxEnd(0, 100);
    oracle.onTxBegin(0, 101);
    oracle.onStore(0, 101, dataBase, 8, 0x1111111111111111ull,
                   0x2222222222222222ull, ObservedWrite::Logged);
    oracle.onTxEnd(0, 101);
}

} // namespace

TEST(CommitOracle, RolledBackInDoubtTxIsAccepted)
{
    CommitOracle oracle;
    recordTwoTxHistory(oracle);
    ASSERT_EQ(oracle.txCount(), 2u);
    ASSERT_EQ(oracle.trackedBytes(), 8u);

    MemoryImage image;
    image.write64(dataBase, 0x1111111111111111ull);  // tx 101 undone

    const OracleReport report = oracle.check(image, {1});
    EXPECT_TRUE(report.ok) << report.summary();
    EXPECT_EQ(report.inDoubt, InDoubtOutcome::RolledBack);
    EXPECT_EQ(report.inDoubtTx, 101u);
    EXPECT_EQ(report.bytesChecked, 8u);
    EXPECT_EQ(CommitOracle::replayCount(report, 1), 1u);
}

TEST(CommitOracle, CommittedInDoubtTxIsAcceptedAndExtendsReplay)
{
    CommitOracle oracle;
    recordTwoTxHistory(oracle);

    MemoryImage image;
    image.write64(dataBase, 0x2222222222222222ull);  // tx 101 durable

    const OracleReport report = oracle.check(image, {1});
    EXPECT_TRUE(report.ok) << report.summary();
    EXPECT_EQ(report.inDoubt, InDoubtOutcome::Committed);
    EXPECT_EQ(CommitOracle::replayCount(report, 1), 2u);
}

TEST(CommitOracle, TornInDoubtTxIsAViolation)
{
    CommitOracle oracle;
    oracle.onTxBegin(0, 100);
    oracle.onStore(0, 100, dataBase, 8, 0, 0x11ull,
                   ObservedWrite::Logged);
    oracle.onStore(0, 100, dataBase + 64, 8, 0, 0x22ull,
                   ObservedWrite::Logged);
    oracle.onTxEnd(0, 100);

    MemoryImage image;
    image.write64(dataBase, 0x11);          // first write durable...
    image.write64(dataBase + 64, 0);        // ...second rolled back

    const OracleReport report = oracle.check(image, {0});
    EXPECT_FALSE(report.ok);
    EXPECT_EQ(report.inDoubt, InDoubtOutcome::Torn);
    EXPECT_EQ(report.inDoubtTx, 100u);
    ASSERT_FALSE(report.violations.empty());
    EXPECT_NE(report.violations[0].note.find("torn"), std::string::npos);
}

TEST(CommitOracle, LostCommittedWriteIsAViolation)
{
    CommitOracle oracle;
    recordTwoTxHistory(oracle);

    MemoryImage image;                      // still all zeros: tx 100 lost

    const OracleReport report = oracle.check(image, {1});
    EXPECT_FALSE(report.ok);
    EXPECT_EQ(report.violationCount, 8u);
    ASSERT_FALSE(report.violations.empty());
    EXPECT_EQ(report.violations[0].addr, dataBase);
    EXPECT_EQ(report.violations[0].expected, 0x11);
    EXPECT_EQ(report.violations[0].actual, 0);
}

TEST(CommitOracle, SurvivingUncommittedWriteNamesTheGuiltyTx)
{
    CommitOracle oracle;
    oracle.onTxBegin(0, 100);
    oracle.onStore(0, 100, dataBase, 8, 0, 0x11ull,
                   ObservedWrite::Logged);
    oracle.onTxEnd(0, 100);
    oracle.onTxBegin(0, 101);               // in-doubt, touches nothing
    oracle.onTxEnd(0, 101);
    oracle.onTxBegin(0, 102);               // never started in timing run
    oracle.onStore(0, 102, dataBase, 8, 0x11ull, 0x33ull,
                   ObservedWrite::Logged);
    oracle.onTxEnd(0, 102);

    MemoryImage image;
    image.write64(dataBase, 0x33);          // tx 102 leaked through

    const OracleReport report = oracle.check(image, {1});
    EXPECT_FALSE(report.ok);
    ASSERT_FALSE(report.violations.empty());
    EXPECT_EQ(report.violations[0].guiltyTx, 102u);
    EXPECT_NE(report.violations[0].note.find("uncommitted"),
              std::string::npos);
}

TEST(CommitOracle, RawAndUncommittedUnloggedWritesAreSkipped)
{
    CommitOracle oracle;
    oracle.onTxBegin(0, 100);
    // storeRaw: never persist-ordered, byte unpredictable.
    oracle.onStore(0, 100, dataBase, 8, 0, 0x11ull, ObservedWrite::Raw);
    // storeInit of an uncommitted tx: unlogged, unpredictable.
    oracle.onStore(0, 100, dataBase + 64, 8, 0, 0x22ull,
                   ObservedWrite::Unlogged);
    oracle.onTxEnd(0, 100);

    MemoryImage image;
    image.write64(dataBase, 0xDEAD);
    image.write64(dataBase + 64, 0xBEEF);

    const OracleReport report = oracle.check(image, {0});
    EXPECT_TRUE(report.ok) << report.summary();
    EXPECT_EQ(report.bytesChecked, 0u);
    EXPECT_EQ(report.bytesSkipped, 16u);
}

TEST(CommitOracle, NonPersistentAndLogAreaWritesAreIgnored)
{
    CommitOracle oracle;
    oracle.onTxBegin(0, 100);
    oracle.onStore(0, 100, PersistentHeap::volatileBase, 8, 0, 1,
                   ObservedWrite::Logged);
    oracle.onStore(0, 100, PersistentHeap::logBase, 8, 0, 1,
                   ObservedWrite::Logged);
    oracle.onTxEnd(0, 100);
    EXPECT_EQ(oracle.trackedBytes(), 0u);
}

// ---------------------------------------------------------------------
// System-level crash injection.
// ---------------------------------------------------------------------

TEST(CrashInjection, CrashNowDropsEveryPendingEvent)
{
    SystemConfig cfg = baselineConfig();
    cfg.logging.scheme = LogScheme::Proteus;
    WorkloadParams params;
    params.threads = 1;
    params.scale = 250;
    params.initScale = 100;
    params.seed = 11;

    FullSystem sys(cfg, WorkloadKind::Queue, params);
    sys.runFor(2000);
    ASSERT_FALSE(sys.done());

    sys.crashNow();
    EXPECT_TRUE(sys.sim().events().empty());
    // The crash image is still materializable after the power cut.
    const MemoryImage image = sys.crashImage();
    EXPECT_GT(image.pageCount(), 0u);
}

TEST(CrashCampaign, SmallSweepFindsNoViolations)
{
    CrashTestOptions opts = smallCampaign();
    std::ostringstream os;
    const CrashTestSummary summary = runCrashTests(opts, os);
    EXPECT_TRUE(summary.ok) << os.str();
    EXPECT_EQ(summary.violations, 0u) << os.str();
    EXPECT_GE(summary.crashPoints, 12u);
    ASSERT_EQ(summary.pairs.size(), 3u);
    for (const CrashPairResult &pair : summary.pairs) {
        EXPECT_GT(pair.totalCycles, 0u);
        EXPECT_GT(pair.totalTxs, 0u);
        EXPECT_FALSE(pair.points.empty());
    }
}

TEST(CrashCampaign, BrokenRecoveryIsCaughtWithAReplayableSeed)
{
    // Skip recovery entirely: in-flight Proteus state survives into the
    // checked image, and the subsystem must say so. This is the
    // regression test for the checker's own detection power.
    CrashTestOptions opts = smallCampaign();
    opts.schemes = {LogScheme::Proteus};
    opts.autoPoints = 25;
    opts.breakRecovery = true;

    std::ostringstream os;
    const CrashTestSummary summary = runCrashTests(opts, os);
    EXPECT_FALSE(summary.ok);
    EXPECT_GT(summary.violations, 0u);
    // The failure report carries the one-command replay with the seed.
    const std::string log = os.str();
    EXPECT_NE(log.find("VIOLATION"), std::string::npos);
    EXPECT_NE(log.find("--seed 11"), std::string::npos);
    EXPECT_NE(log.find("--crash-at"), std::string::npos);
}

TEST(CrashCampaign, JsonIsBitIdenticalAcrossJobsLevels)
{
    const std::string path1 = ::testing::TempDir() + "crashtest_j1.json";
    const std::string path4 = ::testing::TempDir() + "crashtest_j4.json";

    CrashTestOptions opts = smallCampaign();
    opts.autoPoints = 4;
    opts.jsonPath = path1;
    opts.jobs = 1;
    std::ostringstream os1;
    runCrashTests(opts, os1);

    opts.jsonPath = path4;
    opts.jobs = 4;
    std::ostringstream os4;
    runCrashTests(opts, os4);

    const std::string json1 = slurp(path1);
    const std::string json4 = slurp(path4);
    ASSERT_FALSE(json1.empty());
    EXPECT_EQ(json1, json4);
    EXPECT_NE(json1.find("\"tool\": \"proteus-crashtest\""),
              std::string::npos);
    EXPECT_NE(json1.find("\"seed\": 11"), std::string::npos);
    std::remove(path1.c_str());
    std::remove(path4.c_str());
}

TEST(CrashCampaign, ExplicitCrashPointsAreHonored)
{
    CrashTestOptions opts = smallCampaign();
    opts.schemes = {LogScheme::PMEM};
    opts.mode = CrashMode::Points;
    opts.points = {5000, 20000, 5000};      // dup collapses

    std::ostringstream os;
    const CrashTestSummary summary = runCrashTests(opts, os);
    ASSERT_EQ(summary.pairs.size(), 1u);
    ASSERT_EQ(summary.pairs[0].points.size(), 2u);
    EXPECT_EQ(summary.pairs[0].points[0].crashCycle, 5000u);
    EXPECT_EQ(summary.pairs[0].points[1].crashCycle, 20000u);
    EXPECT_TRUE(summary.ok) << os.str();
}

TEST(CrashCampaign, FuzzModeIsDeterministicForAFixedSeed)
{
    CrashTestOptions opts = smallCampaign();
    opts.schemes = {LogScheme::Proteus};
    opts.mode = CrashMode::Fuzz;
    opts.fuzzCount = 5;

    std::ostringstream os1, os2;
    const CrashTestSummary a = runCrashTests(opts, os1);
    const CrashTestSummary b = runCrashTests(opts, os2);
    ASSERT_EQ(a.pairs.size(), 1u);
    ASSERT_EQ(a.pairs[0].points.size(), b.pairs[0].points.size());
    EXPECT_FALSE(a.pairs[0].points.empty());
    for (std::size_t i = 0; i < a.pairs[0].points.size(); ++i) {
        EXPECT_EQ(a.pairs[0].points[i].crashCycle,
                  b.pairs[0].points[i].crashCycle);
    }
    EXPECT_TRUE(a.ok) << os1.str();
}
