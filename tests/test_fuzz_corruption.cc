/**
 * @file
 * Corruption fuzzing: both deserializers that consume untrusted bytes —
 * the .ptrace snapshot loader and the crash-recovery log scanners —
 * must survive arbitrary byte flips, truncations, and garbage without
 * crashing. The loader may reject input only via FatalError; the
 * recovery scanners must treat any corruption as torn/invalid slots and
 * return normally. Each iteration is seeded and the seed echoed via
 * SCOPED_TRACE so failures replay exactly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/trace_bundle.hh"
#include "harness/trace_io.hh"
#include "heap/memory_image.hh"
#include "logging/log_record.hh"
#include "recovery/recovery.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

using namespace proteus;

namespace {

std::vector<char>
recordSeedFile()
{
    TraceBundleKey key;
    key.kind = WorkloadKind::Queue;
    key.scheme = LogScheme::Proteus;
    key.params.threads = 2;
    key.params.scale = 2000;
    key.params.initScale = 200;
    key.params.seed = 1;
    const auto bundle = TraceBundle::build(key, nullptr, true);

    const std::string path = testing::TempDir() + "fuzz_seed.ptrace";
    saveTraceBundle(*bundle, path);
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    std::remove(path.c_str());
    return bytes;
}

/** Apply one random mutation (flips, truncation, extension, zeroing). */
std::vector<char>
mutate(const std::vector<char> &seed_bytes, Random &rng)
{
    std::vector<char> out = seed_bytes;
    switch (rng.nextBelow(4)) {
      case 0: {    // flip 1..16 bytes anywhere
        const std::uint64_t flips = rng.nextRange(1, 16);
        for (std::uint64_t i = 0; i < flips; ++i) {
            out[rng.nextBelow(out.size())] ^=
                static_cast<char>(1u << rng.nextBelow(8));
        }
        break;
      }
      case 1:    // truncate at a random offset (possibly to empty)
        out.resize(rng.nextBelow(out.size() + 1));
        break;
      case 2: {    // append random junk
        const std::uint64_t extra = rng.nextRange(1, 256);
        for (std::uint64_t i = 0; i < extra; ++i)
            out.push_back(static_cast<char>(rng.nextBelow(256)));
        break;
      }
      default: {    // zero a random range
        const std::size_t at = rng.nextBelow(out.size());
        const std::size_t n =
            std::min<std::size_t>(rng.nextRange(1, 512),
                                  out.size() - at);
        std::memset(out.data() + at, 0, n);
        break;
      }
    }
    return out;
}

} // namespace

TEST(FuzzPtrace, LoaderRejectsCorruptionWithoutCrashing)
{
    const std::vector<char> seed_bytes = recordSeedFile();
    ASSERT_FALSE(seed_bytes.empty());
    const std::string path = testing::TempDir() + "fuzz_mut.ptrace";

    unsigned rejected = 0;
    unsigned survived = 0;
    for (std::uint64_t seed = 1; seed <= 300; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Random rng(seed * 0x9E3779B97F4A7C15ull);
        const std::vector<char> mutant = mutate(seed_bytes, rng);
        std::ofstream(path, std::ios::binary)
            .write(mutant.data(),
                   static_cast<std::streamsize>(mutant.size()));

        // Every entry point must either succeed or throw FatalError;
        // anything else (segfault, std::bad_alloc from a hostile count,
        // uncaught exception) fails the test run itself.
        try {
            const auto bundle = loadTraceBundle(path);
            ASSERT_NE(bundle, nullptr);
            ++survived;
        } catch (const FatalError &) {
            ++rejected;
        }
        try {
            inspectTraceFile(path);
        } catch (const FatalError &) {
        }
        try {
            verifyTraceFile(path);
        } catch (const FatalError &) {
        }
    }
    std::remove(path.c_str());

    // Most mutants must be rejected; a few byte flips may land in dead
    // bytes and load fine, which is acceptable — just not a majority.
    EXPECT_GT(rejected, survived);
    EXPECT_GE(rejected + survived, 300u);
}

namespace {

/** Lay out a plausible two-transaction undo log in an image. */
void
writeLogArea(MemoryImage &image, Addr start, std::uint64_t slots)
{
    std::uint64_t seq = 1;
    for (std::uint64_t i = 0; i < slots; ++i) {
        LogRecord rec;
        rec.magic = LogRecord::magicValue;
        rec.flags = LogRecord::flagValid;
        if (i == slots / 2 - 1)
            rec.flags |= LogRecord::flagTxEnd;
        rec.txId = i < slots / 2 ? 1 : 2;
        rec.seq = seq++;
        rec.fromAddr = 0x4000'0000ull + (i % 8) * logDataSize;
        for (std::size_t b = 0; b < logDataSize; ++b)
            rec.data[b] = static_cast<std::uint8_t>(i + b);
        const auto bytes = rec.toBytes();
        image.write(start + i * logEntrySize, bytes.data(),
                    bytes.size());
        // The logged-from granules exist in the image too, so undo has
        // something to write back over.
        image.write(rec.fromAddr, rec.data.data(), logDataSize);
    }
}

} // namespace

TEST(FuzzRecovery, ScansAndUndoNeverCrashOnCorruptLogs)
{
    constexpr Addr logStart = 0x1'4000'0000ull;
    constexpr std::uint64_t slots = 24;
    constexpr Addr logEnd = logStart + slots * logEntrySize;
    constexpr Addr flagAddr = 0x4000'2000ull;

    MemoryImage pristine;
    writeLogArea(pristine, logStart, slots);
    pristine.write64(flagAddr, 2);    // tx 2 in flight (software flag)

    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Random rng(seed ^ 0xBF58476D1CE4E5B9ull);

        MemoryImage image = pristine;
        // Corrupt 1..32 random bytes across the log area, including
        // slot boundaries, magics, flags, and the length metadata.
        const std::uint64_t hits = rng.nextRange(1, 32);
        for (std::uint64_t i = 0; i < hits; ++i) {
            const Addr at = logStart +
                            rng.nextBelow(slots * logEntrySize);
            std::uint8_t byte = 0;
            image.read(at, &byte, 1);
            byte ^= static_cast<std::uint8_t>(1u << rng.nextBelow(8));
            image.write(at, &byte, 1);
        }
        // Occasionally corrupt the software log flag as well.
        if (rng.nextBool(0.25))
            image.write64(flagAddr, rng.next());

        // Every scan and every recovery family must return normally on
        // arbitrary log-area corruption — torn records are data, not
        // control flow.
        const Recovery::LogScan contiguous =
            Recovery::scanLogContiguous(image, logStart, logEnd);
        EXPECT_LE(contiguous.slotsScanned, slots);
        EXPECT_LE(contiguous.records.size(), slots);

        const Recovery::LogScan sparse =
            Recovery::scanLogSparse(image, logStart, logEnd);
        EXPECT_EQ(sparse.slotsScanned, slots);
        EXPECT_LE(sparse.records.size(), slots);

        const std::vector<LogRecord> all =
            Recovery::scanLog(image, logStart, logEnd);
        EXPECT_LE(all.size(), slots);

        {
            MemoryImage scratch = image;
            const RecoveryResult r =
                Recovery::recoverProteus(scratch, logStart, logEnd);
            EXPECT_LE(r.entriesApplied, slots);
        }
        {
            MemoryImage scratch = image;
            const RecoveryResult r =
                Recovery::recoverAtom(scratch, logStart, logEnd);
            EXPECT_LE(r.entriesApplied, slots);
        }
        {
            MemoryImage scratch = image;
            const RecoveryResult r = Recovery::recoverSoftware(
                scratch, logStart, logEnd, flagAddr);
            EXPECT_LE(r.entriesApplied, slots);
        }
    }
}

namespace {

/**
 * Corrupt @p image the way the NVM media fault model does: whole
 * 64B-line events — torn writes (8-byte chunks replaced by stale or
 * garbage data), transient 1..2-bit flips, and ECC poison marks.
 */
void
injectMediaShapedFaults(MemoryImage &image, Addr start,
                        std::uint64_t lines, Random &rng)
{
    const std::uint64_t events = rng.nextRange(1, 8);
    for (std::uint64_t i = 0; i < events; ++i) {
        const Addr line = start + rng.nextBelow(lines) * blockSize;
        switch (rng.nextBelow(3)) {
          case 0: {    // torn line: some 8B chunks lost or garbled
            std::uint8_t buf[blockSize];
            image.read(line, buf, blockSize);
            const std::uint64_t mask = rng.nextRange(1, 254);
            for (unsigned c = 0; c < blockSize / 8; ++c) {
                if (!(mask & (1ull << c)))
                    continue;
                for (unsigned b = 0; b < 8; ++b) {
                    buf[c * 8 + b] = rng.nextBool(0.5)
                        ? 0
                        : static_cast<std::uint8_t>(rng.nextBelow(256));
                }
            }
            image.write(line, buf, blockSize);
            break;
          }
          case 1: {    // transient flip of 1..2 bits
            const std::uint64_t flips = rng.nextRange(1, 2);
            for (std::uint64_t f = 0; f < flips; ++f) {
                const Addr at = line + rng.nextBelow(blockSize);
                std::uint8_t byte = 0;
                image.read(at, &byte, 1);
                byte ^=
                    static_cast<std::uint8_t>(1u << rng.nextBelow(8));
                image.write(at, &byte, 1);
            }
            break;
          }
          default:    // detected-uncorrectable: ECC poison mark
            image.markPoisoned(line);
            break;
        }
    }
}

} // namespace

TEST(FuzzRecovery, MediaFaultShapedCorruptionNeverCrashesOrReplays)
{
    constexpr Addr logStart = 0x1'4000'0000ull;
    constexpr std::uint64_t slots = 24;
    constexpr Addr logEnd = logStart + slots * logEntrySize;
    constexpr Addr flagAddr = 0x4000'2000ull;

    MemoryImage pristine;
    writeLogArea(pristine, logStart, slots);
    pristine.write64(flagAddr, 2);

    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Random rng(seed * 0x94D049BB133111EBull);

        MemoryImage image = pristine;
        injectMediaShapedFaults(image, logStart, slots, rng);

        const Recovery::LogScan sparse =
            Recovery::scanLogSparse(image, logStart, logEnd);
        EXPECT_EQ(sparse.slotsScanned, slots);
        // Poisoned slots are classified, never parsed: the two sets
        // partition the area with the invalid/torn remainder.
        EXPECT_LE(sparse.records.size() + sparse.poisonedSlots, slots);
        EXPECT_EQ(sparse.poisonedSlots, image.poisonedCount());
        if (sparse.poisonedSlots > 0) {
            EXPECT_NE(sparse.firstPoisonedSlot, invalidAddr);
            EXPECT_TRUE(image.isPoisoned(sparse.firstPoisonedSlot));
        }

        const Recovery::LogScan contiguous =
            Recovery::scanLogContiguous(image, logStart, logEnd);
        EXPECT_LE(contiguous.records.size() + contiguous.poisonedSlots,
                  slots);

        for (int family = 0; family < 3; ++family) {
            MemoryImage scratch = image;
            RecoveryResult r;
            switch (family) {
              case 0:
                r = Recovery::recoverProteus(scratch, logStart, logEnd);
                break;
              case 1:
                r = Recovery::recoverAtom(scratch, logStart, logEnd);
                break;
              default:
                r = Recovery::recoverSoftware(scratch, logStart, logEnd,
                                              flagAddr);
                break;
            }
            EXPECT_LE(r.entriesApplied, slots);
            // Recovery only rewrites logged-from granules and log-area
            // metadata; it must never clear a media poison mark.
            for (Addr line : image.poisonedLines()) {
                if (line >= logStart && line < logEnd)
                    EXPECT_TRUE(scratch.isPoisoned(line));
            }
        }
    }
}

TEST(FuzzPtrace, MediaFaultShapedCorruptionIsRejectedOrLoads)
{
    // Line-granular corruption of the snapshot payload — whole 64B
    // spans torn or bit-flipped, as NVM media faults would shape them —
    // must never crash the loader.
    const std::vector<char> seed_bytes = recordSeedFile();
    ASSERT_FALSE(seed_bytes.empty());
    const std::string path = testing::TempDir() + "fuzz_media.ptrace";

    unsigned rejected = 0;
    unsigned survived = 0;
    for (std::uint64_t seed = 1; seed <= 150; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Random rng(seed * 0xD6E8FEB86659FD93ull);

        std::vector<char> mutant = seed_bytes;
        const std::uint64_t lines = mutant.size() / blockSize;
        ASSERT_GT(lines, 0u);
        const std::uint64_t events = rng.nextRange(1, 6);
        for (std::uint64_t i = 0; i < events; ++i) {
            const std::size_t at = rng.nextBelow(lines) * blockSize;
            if (rng.nextBool(0.5)) {    // torn line
                const std::uint64_t mask = rng.nextRange(1, 254);
                for (unsigned c = 0; c < blockSize / 8; ++c) {
                    if (mask & (1ull << c))
                        std::memset(mutant.data() + at + c * 8, 0, 8);
                }
            } else {                    // 1..2-bit transient flip
                mutant[at + rng.nextBelow(blockSize)] ^=
                    static_cast<char>(1u << rng.nextBelow(8));
            }
        }
        std::ofstream(path, std::ios::binary)
            .write(mutant.data(),
                   static_cast<std::streamsize>(mutant.size()));

        try {
            const auto bundle = loadTraceBundle(path);
            ASSERT_NE(bundle, nullptr);
            ++survived;
        } catch (const FatalError &) {
            ++rejected;
        }
        try {
            verifyTraceFile(path);
        } catch (const FatalError &) {
        }
    }
    std::remove(path.c_str());
    EXPECT_EQ(rejected + survived, 150u);
    // Payload-section checksums must catch at least some line tears.
    EXPECT_GT(rejected, 0u);
}
