# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--scale" "2000" "--threads" "2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_workload "/root/repo/build/examples/custom_workload")
set_tests_properties(example_custom_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_persistency_models "/root/repo/build/examples/persistency_models")
set_tests_properties(example_persistency_models PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_crash_recovery "/root/repo/build/examples/crash_recovery" "--scale" "1000")
set_tests_properties(example_crash_recovery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build/tools/proteus-sim" "run" "QE" "--scale" "2000" "--threads" "2")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_crash "/root/repo/build/tools/proteus-sim" "crash" "HM" "--scale" "1000" "--threads" "1" "--at" "40")
set_tests_properties(cli_crash PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
