file(REMOVE_RECURSE
  "../bench/fig06_speedup_nvm"
  "../bench/fig06_speedup_nvm.pdb"
  "CMakeFiles/fig06_speedup_nvm.dir/fig06_speedup_nvm.cc.o"
  "CMakeFiles/fig06_speedup_nvm.dir/fig06_speedup_nvm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_speedup_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
