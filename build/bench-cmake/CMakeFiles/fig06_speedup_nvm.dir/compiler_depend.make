# Empty compiler generated dependencies file for fig06_speedup_nvm.
# This may be replaced when dependencies are built.
