
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_components.cc" "bench-cmake/CMakeFiles/micro_components.dir/micro_components.cc.o" "gcc" "bench-cmake/CMakeFiles/micro_components.dir/micro_components.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/proteus_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/proteus_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/proteus_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/memctrl/CMakeFiles/proteus_memctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/proteus_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/proteus_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/proteus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/proteus_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/proteus_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/logging/CMakeFiles/proteus_logging.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/proteus_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/proteus_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
