file(REMOVE_RECURSE
  "../bench/ablation_lwr"
  "../bench/ablation_lwr.pdb"
  "CMakeFiles/ablation_lwr.dir/ablation_lwr.cc.o"
  "CMakeFiles/ablation_lwr.dir/ablation_lwr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lwr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
