# Empty compiler generated dependencies file for ablation_lwr.
# This may be replaced when dependencies are built.
