# Empty compiler generated dependencies file for fig10_dram.
# This may be replaced when dependencies are built.
