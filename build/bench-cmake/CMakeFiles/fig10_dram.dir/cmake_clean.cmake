file(REMOVE_RECURSE
  "../bench/fig10_dram"
  "../bench/fig10_dram.pdb"
  "CMakeFiles/fig10_dram.dir/fig10_dram.cc.o"
  "CMakeFiles/fig10_dram.dir/fig10_dram.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
