# Empty dependencies file for ablation_llt.
# This may be replaced when dependencies are built.
