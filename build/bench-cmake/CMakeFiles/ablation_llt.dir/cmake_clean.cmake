file(REMOVE_RECURSE
  "../bench/ablation_llt"
  "../bench/ablation_llt.pdb"
  "CMakeFiles/ablation_llt.dir/ablation_llt.cc.o"
  "CMakeFiles/ablation_llt.dir/ablation_llt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_llt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
