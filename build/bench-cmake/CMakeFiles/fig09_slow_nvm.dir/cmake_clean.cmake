file(REMOVE_RECURSE
  "../bench/fig09_slow_nvm"
  "../bench/fig09_slow_nvm.pdb"
  "CMakeFiles/fig09_slow_nvm.dir/fig09_slow_nvm.cc.o"
  "CMakeFiles/fig09_slow_nvm.dir/fig09_slow_nvm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_slow_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
