# Empty dependencies file for fig09_slow_nvm.
# This may be replaced when dependencies are built.
