# Empty compiler generated dependencies file for table4_llt_missrate.
# This may be replaced when dependencies are built.
