file(REMOVE_RECURSE
  "../bench/table4_llt_missrate"
  "../bench/table4_llt_missrate.pdb"
  "CMakeFiles/table4_llt_missrate.dir/table4_llt_missrate.cc.o"
  "CMakeFiles/table4_llt_missrate.dir/table4_llt_missrate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_llt_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
