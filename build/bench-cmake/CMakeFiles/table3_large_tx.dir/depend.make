# Empty dependencies file for table3_large_tx.
# This may be replaced when dependencies are built.
