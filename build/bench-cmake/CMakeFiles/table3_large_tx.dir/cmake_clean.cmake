file(REMOVE_RECURSE
  "../bench/table3_large_tx"
  "../bench/table3_large_tx.pdb"
  "CMakeFiles/table3_large_tx.dir/table3_large_tx.cc.o"
  "CMakeFiles/table3_large_tx.dir/table3_large_tx.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_large_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
