file(REMOVE_RECURSE
  "../bench/fig12_lpq_sweep"
  "../bench/fig12_lpq_sweep.pdb"
  "CMakeFiles/fig12_lpq_sweep.dir/fig12_lpq_sweep.cc.o"
  "CMakeFiles/fig12_lpq_sweep.dir/fig12_lpq_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_lpq_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
