# Empty dependencies file for fig11_logq_sweep.
# This may be replaced when dependencies are built.
