file(REMOVE_RECURSE
  "../bench/fig08_nvm_writes"
  "../bench/fig08_nvm_writes.pdb"
  "CMakeFiles/fig08_nvm_writes.dir/fig08_nvm_writes.cc.o"
  "CMakeFiles/fig08_nvm_writes.dir/fig08_nvm_writes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_nvm_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
