# Empty compiler generated dependencies file for fig08_nvm_writes.
# This may be replaced when dependencies are built.
