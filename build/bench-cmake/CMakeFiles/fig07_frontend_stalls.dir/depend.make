# Empty dependencies file for fig07_frontend_stalls.
# This may be replaced when dependencies are built.
