file(REMOVE_RECURSE
  "../bench/fig07_frontend_stalls"
  "../bench/fig07_frontend_stalls.pdb"
  "CMakeFiles/fig07_frontend_stalls.dir/fig07_frontend_stalls.cc.o"
  "CMakeFiles/fig07_frontend_stalls.dir/fig07_frontend_stalls.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_frontend_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
