
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_branch_predictor.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_branch_predictor.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_branch_predictor.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cli_stats.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_cli_stats.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_cli_stats.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_heap.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_heap.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_heap.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_llt.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_llt.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_llt.cc.o.d"
  "/root/repo/tests/test_lock_manager.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_lock_manager.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_lock_manager.cc.o.d"
  "/root/repo/tests/test_log_queue.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_log_queue.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_log_queue.cc.o.d"
  "/root/repo/tests/test_log_record.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_log_record.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_log_record.cc.o.d"
  "/root/repo/tests/test_mem_ctrl.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_mem_ctrl.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_mem_ctrl.cc.o.d"
  "/root/repo/tests/test_memory_image.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_memory_image.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_memory_image.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_recovery.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_recovery.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_recovery.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_trace_builder.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_trace_builder.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_trace_builder.cc.o.d"
  "/root/repo/tests/test_tx_context.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_tx_context.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_tx_context.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/proteus_unit_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/proteus_unit_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/proteus_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/proteus_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/proteus_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/memctrl/CMakeFiles/proteus_memctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/proteus_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/proteus_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/proteus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/proteus_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/proteus_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/logging/CMakeFiles/proteus_logging.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/proteus_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/proteus_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
