# Empty dependencies file for proteus_unit_tests.
# This may be replaced when dependencies are built.
