# Empty compiler generated dependencies file for proteus_recovery.
# This may be replaced when dependencies are built.
