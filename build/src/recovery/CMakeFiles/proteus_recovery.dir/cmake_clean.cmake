file(REMOVE_RECURSE
  "CMakeFiles/proteus_recovery.dir/recovery.cc.o"
  "CMakeFiles/proteus_recovery.dir/recovery.cc.o.d"
  "libproteus_recovery.a"
  "libproteus_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
