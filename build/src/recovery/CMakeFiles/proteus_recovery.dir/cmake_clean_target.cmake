file(REMOVE_RECURSE
  "libproteus_recovery.a"
)
