
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heap/memory_image.cc" "src/heap/CMakeFiles/proteus_heap.dir/memory_image.cc.o" "gcc" "src/heap/CMakeFiles/proteus_heap.dir/memory_image.cc.o.d"
  "/root/repo/src/heap/persistent_heap.cc" "src/heap/CMakeFiles/proteus_heap.dir/persistent_heap.cc.o" "gcc" "src/heap/CMakeFiles/proteus_heap.dir/persistent_heap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/proteus_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
