file(REMOVE_RECURSE
  "libproteus_heap.a"
)
