file(REMOVE_RECURSE
  "CMakeFiles/proteus_heap.dir/memory_image.cc.o"
  "CMakeFiles/proteus_heap.dir/memory_image.cc.o.d"
  "CMakeFiles/proteus_heap.dir/persistent_heap.cc.o"
  "CMakeFiles/proteus_heap.dir/persistent_heap.cc.o.d"
  "libproteus_heap.a"
  "libproteus_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
