# Empty compiler generated dependencies file for proteus_heap.
# This may be replaced when dependencies are built.
