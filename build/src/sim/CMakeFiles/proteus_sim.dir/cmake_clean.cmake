file(REMOVE_RECURSE
  "CMakeFiles/proteus_sim.dir/config.cc.o"
  "CMakeFiles/proteus_sim.dir/config.cc.o.d"
  "CMakeFiles/proteus_sim.dir/event_queue.cc.o"
  "CMakeFiles/proteus_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/proteus_sim.dir/logging.cc.o"
  "CMakeFiles/proteus_sim.dir/logging.cc.o.d"
  "CMakeFiles/proteus_sim.dir/random.cc.o"
  "CMakeFiles/proteus_sim.dir/random.cc.o.d"
  "CMakeFiles/proteus_sim.dir/simulator.cc.o"
  "CMakeFiles/proteus_sim.dir/simulator.cc.o.d"
  "CMakeFiles/proteus_sim.dir/stats.cc.o"
  "CMakeFiles/proteus_sim.dir/stats.cc.o.d"
  "libproteus_sim.a"
  "libproteus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
