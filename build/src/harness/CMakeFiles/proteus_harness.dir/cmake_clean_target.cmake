file(REMOVE_RECURSE
  "libproteus_harness.a"
)
