file(REMOVE_RECURSE
  "CMakeFiles/proteus_harness.dir/experiments.cc.o"
  "CMakeFiles/proteus_harness.dir/experiments.cc.o.d"
  "CMakeFiles/proteus_harness.dir/system.cc.o"
  "CMakeFiles/proteus_harness.dir/system.cc.o.d"
  "libproteus_harness.a"
  "libproteus_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
