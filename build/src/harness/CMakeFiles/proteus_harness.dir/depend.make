# Empty dependencies file for proteus_harness.
# This may be replaced when dependencies are built.
