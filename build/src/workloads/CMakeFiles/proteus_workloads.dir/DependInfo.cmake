
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/avltree_wl.cc" "src/workloads/CMakeFiles/proteus_workloads.dir/avltree_wl.cc.o" "gcc" "src/workloads/CMakeFiles/proteus_workloads.dir/avltree_wl.cc.o.d"
  "/root/repo/src/workloads/btree_wl.cc" "src/workloads/CMakeFiles/proteus_workloads.dir/btree_wl.cc.o" "gcc" "src/workloads/CMakeFiles/proteus_workloads.dir/btree_wl.cc.o.d"
  "/root/repo/src/workloads/factory.cc" "src/workloads/CMakeFiles/proteus_workloads.dir/factory.cc.o" "gcc" "src/workloads/CMakeFiles/proteus_workloads.dir/factory.cc.o.d"
  "/root/repo/src/workloads/hashmap_wl.cc" "src/workloads/CMakeFiles/proteus_workloads.dir/hashmap_wl.cc.o" "gcc" "src/workloads/CMakeFiles/proteus_workloads.dir/hashmap_wl.cc.o.d"
  "/root/repo/src/workloads/linkedlist_wl.cc" "src/workloads/CMakeFiles/proteus_workloads.dir/linkedlist_wl.cc.o" "gcc" "src/workloads/CMakeFiles/proteus_workloads.dir/linkedlist_wl.cc.o.d"
  "/root/repo/src/workloads/queue_wl.cc" "src/workloads/CMakeFiles/proteus_workloads.dir/queue_wl.cc.o" "gcc" "src/workloads/CMakeFiles/proteus_workloads.dir/queue_wl.cc.o.d"
  "/root/repo/src/workloads/rbtree_wl.cc" "src/workloads/CMakeFiles/proteus_workloads.dir/rbtree_wl.cc.o" "gcc" "src/workloads/CMakeFiles/proteus_workloads.dir/rbtree_wl.cc.o.d"
  "/root/repo/src/workloads/stringswap_wl.cc" "src/workloads/CMakeFiles/proteus_workloads.dir/stringswap_wl.cc.o" "gcc" "src/workloads/CMakeFiles/proteus_workloads.dir/stringswap_wl.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/proteus_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/proteus_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/proteus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/proteus_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/proteus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/proteus_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/logging/CMakeFiles/proteus_logging.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
