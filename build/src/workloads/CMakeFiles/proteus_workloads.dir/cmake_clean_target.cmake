file(REMOVE_RECURSE
  "libproteus_workloads.a"
)
