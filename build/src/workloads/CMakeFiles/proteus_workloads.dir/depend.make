# Empty dependencies file for proteus_workloads.
# This may be replaced when dependencies are built.
