file(REMOVE_RECURSE
  "CMakeFiles/proteus_workloads.dir/avltree_wl.cc.o"
  "CMakeFiles/proteus_workloads.dir/avltree_wl.cc.o.d"
  "CMakeFiles/proteus_workloads.dir/btree_wl.cc.o"
  "CMakeFiles/proteus_workloads.dir/btree_wl.cc.o.d"
  "CMakeFiles/proteus_workloads.dir/factory.cc.o"
  "CMakeFiles/proteus_workloads.dir/factory.cc.o.d"
  "CMakeFiles/proteus_workloads.dir/hashmap_wl.cc.o"
  "CMakeFiles/proteus_workloads.dir/hashmap_wl.cc.o.d"
  "CMakeFiles/proteus_workloads.dir/linkedlist_wl.cc.o"
  "CMakeFiles/proteus_workloads.dir/linkedlist_wl.cc.o.d"
  "CMakeFiles/proteus_workloads.dir/queue_wl.cc.o"
  "CMakeFiles/proteus_workloads.dir/queue_wl.cc.o.d"
  "CMakeFiles/proteus_workloads.dir/rbtree_wl.cc.o"
  "CMakeFiles/proteus_workloads.dir/rbtree_wl.cc.o.d"
  "CMakeFiles/proteus_workloads.dir/stringswap_wl.cc.o"
  "CMakeFiles/proteus_workloads.dir/stringswap_wl.cc.o.d"
  "CMakeFiles/proteus_workloads.dir/workload.cc.o"
  "CMakeFiles/proteus_workloads.dir/workload.cc.o.d"
  "libproteus_workloads.a"
  "libproteus_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
