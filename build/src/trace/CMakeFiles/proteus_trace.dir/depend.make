# Empty dependencies file for proteus_trace.
# This may be replaced when dependencies are built.
