file(REMOVE_RECURSE
  "libproteus_trace.a"
)
