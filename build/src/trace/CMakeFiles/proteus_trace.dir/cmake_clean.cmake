file(REMOVE_RECURSE
  "CMakeFiles/proteus_trace.dir/trace_builder.cc.o"
  "CMakeFiles/proteus_trace.dir/trace_builder.cc.o.d"
  "libproteus_trace.a"
  "libproteus_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
