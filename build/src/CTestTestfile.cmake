# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("isa")
subdirs("heap")
subdirs("dram")
subdirs("memctrl")
subdirs("cache")
subdirs("logging")
subdirs("cpu")
subdirs("trace")
subdirs("workloads")
subdirs("recovery")
subdirs("harness")
