# Empty dependencies file for proteus_cache.
# This may be replaced when dependencies are built.
