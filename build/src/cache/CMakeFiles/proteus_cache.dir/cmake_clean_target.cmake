file(REMOVE_RECURSE
  "libproteus_cache.a"
)
