
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_array.cc" "src/cache/CMakeFiles/proteus_cache.dir/cache_array.cc.o" "gcc" "src/cache/CMakeFiles/proteus_cache.dir/cache_array.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/cache/CMakeFiles/proteus_cache.dir/hierarchy.cc.o" "gcc" "src/cache/CMakeFiles/proteus_cache.dir/hierarchy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/proteus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/proteus_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/memctrl/CMakeFiles/proteus_memctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/proteus_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/logging/CMakeFiles/proteus_logging.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
