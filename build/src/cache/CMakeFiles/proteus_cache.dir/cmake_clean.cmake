file(REMOVE_RECURSE
  "CMakeFiles/proteus_cache.dir/cache_array.cc.o"
  "CMakeFiles/proteus_cache.dir/cache_array.cc.o.d"
  "CMakeFiles/proteus_cache.dir/hierarchy.cc.o"
  "CMakeFiles/proteus_cache.dir/hierarchy.cc.o.d"
  "libproteus_cache.a"
  "libproteus_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
