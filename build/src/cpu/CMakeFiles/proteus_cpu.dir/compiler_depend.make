# Empty compiler generated dependencies file for proteus_cpu.
# This may be replaced when dependencies are built.
