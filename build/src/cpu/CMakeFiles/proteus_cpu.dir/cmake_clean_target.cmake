file(REMOVE_RECURSE
  "libproteus_cpu.a"
)
