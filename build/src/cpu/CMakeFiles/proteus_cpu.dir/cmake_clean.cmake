file(REMOVE_RECURSE
  "CMakeFiles/proteus_cpu.dir/branch_predictor.cc.o"
  "CMakeFiles/proteus_cpu.dir/branch_predictor.cc.o.d"
  "CMakeFiles/proteus_cpu.dir/core.cc.o"
  "CMakeFiles/proteus_cpu.dir/core.cc.o.d"
  "CMakeFiles/proteus_cpu.dir/lock_manager.cc.o"
  "CMakeFiles/proteus_cpu.dir/lock_manager.cc.o.d"
  "libproteus_cpu.a"
  "libproteus_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
