file(REMOVE_RECURSE
  "CMakeFiles/proteus_isa.dir/micro_op.cc.o"
  "CMakeFiles/proteus_isa.dir/micro_op.cc.o.d"
  "CMakeFiles/proteus_isa.dir/trace.cc.o"
  "CMakeFiles/proteus_isa.dir/trace.cc.o.d"
  "libproteus_isa.a"
  "libproteus_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
