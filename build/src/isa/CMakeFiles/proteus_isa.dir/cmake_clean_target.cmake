file(REMOVE_RECURSE
  "libproteus_isa.a"
)
