# Empty dependencies file for proteus_isa.
# This may be replaced when dependencies are built.
