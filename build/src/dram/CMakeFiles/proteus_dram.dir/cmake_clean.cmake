file(REMOVE_RECURSE
  "CMakeFiles/proteus_dram.dir/nvm_timing.cc.o"
  "CMakeFiles/proteus_dram.dir/nvm_timing.cc.o.d"
  "libproteus_dram.a"
  "libproteus_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
