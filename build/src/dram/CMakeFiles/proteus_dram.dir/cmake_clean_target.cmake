file(REMOVE_RECURSE
  "libproteus_dram.a"
)
