# Empty compiler generated dependencies file for proteus_dram.
# This may be replaced when dependencies are built.
