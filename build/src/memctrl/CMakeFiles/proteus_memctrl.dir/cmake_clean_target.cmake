file(REMOVE_RECURSE
  "libproteus_memctrl.a"
)
