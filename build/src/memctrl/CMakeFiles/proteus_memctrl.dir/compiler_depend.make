# Empty compiler generated dependencies file for proteus_memctrl.
# This may be replaced when dependencies are built.
