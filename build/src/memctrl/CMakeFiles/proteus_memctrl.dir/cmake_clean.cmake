file(REMOVE_RECURSE
  "CMakeFiles/proteus_memctrl.dir/mem_ctrl.cc.o"
  "CMakeFiles/proteus_memctrl.dir/mem_ctrl.cc.o.d"
  "libproteus_memctrl.a"
  "libproteus_memctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_memctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
