
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logging/llt.cc" "src/logging/CMakeFiles/proteus_logging.dir/llt.cc.o" "gcc" "src/logging/CMakeFiles/proteus_logging.dir/llt.cc.o.d"
  "/root/repo/src/logging/log_queue.cc" "src/logging/CMakeFiles/proteus_logging.dir/log_queue.cc.o" "gcc" "src/logging/CMakeFiles/proteus_logging.dir/log_queue.cc.o.d"
  "/root/repo/src/logging/log_record.cc" "src/logging/CMakeFiles/proteus_logging.dir/log_record.cc.o" "gcc" "src/logging/CMakeFiles/proteus_logging.dir/log_record.cc.o.d"
  "/root/repo/src/logging/tx_context.cc" "src/logging/CMakeFiles/proteus_logging.dir/tx_context.cc.o" "gcc" "src/logging/CMakeFiles/proteus_logging.dir/tx_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/proteus_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
