file(REMOVE_RECURSE
  "CMakeFiles/proteus_logging.dir/llt.cc.o"
  "CMakeFiles/proteus_logging.dir/llt.cc.o.d"
  "CMakeFiles/proteus_logging.dir/log_queue.cc.o"
  "CMakeFiles/proteus_logging.dir/log_queue.cc.o.d"
  "CMakeFiles/proteus_logging.dir/log_record.cc.o"
  "CMakeFiles/proteus_logging.dir/log_record.cc.o.d"
  "CMakeFiles/proteus_logging.dir/tx_context.cc.o"
  "CMakeFiles/proteus_logging.dir/tx_context.cc.o.d"
  "libproteus_logging.a"
  "libproteus_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
