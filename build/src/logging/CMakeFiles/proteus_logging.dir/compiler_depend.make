# Empty compiler generated dependencies file for proteus_logging.
# This may be replaced when dependencies are built.
