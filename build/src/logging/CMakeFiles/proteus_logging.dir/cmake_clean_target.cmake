file(REMOVE_RECURSE
  "libproteus_logging.a"
)
