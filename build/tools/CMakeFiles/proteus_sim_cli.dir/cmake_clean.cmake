file(REMOVE_RECURSE
  "CMakeFiles/proteus_sim_cli.dir/proteus_sim.cc.o"
  "CMakeFiles/proteus_sim_cli.dir/proteus_sim.cc.o.d"
  "proteus-sim"
  "proteus-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
