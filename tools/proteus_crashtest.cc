/**
 * @file
 * proteus-crashtest: oracle-checked crash injection and recovery
 * fuzzing across the scheme x workload matrix.
 *
 *   proteus-crashtest --sweep [--sweep-points N] [--jobs J] ...
 *   proteus-crashtest --crash-stride N ...
 *   proteus-crashtest --crash-at C1,C2,... ...
 *   proteus-crashtest --fuzz N --seed S ...
 *
 * Every mode is deterministic given --seed, and the JSON output is
 * bit-identical at any --jobs level. Exit status is nonzero when any
 * crash point violates the oracle, a structural invariant, or the
 * committed-prefix replay.
 */

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "crashtest/crash_tester.hh"
#include "sim/logging.hh"

using namespace proteus;

namespace {

int
usage()
{
    std::cout
        << "usage: proteus-crashtest [mode] [options]\n\n"
        << "modes (default: --sweep):\n"
        << "  --sweep            crash every totalCycles/N cycles "
        << "(N = --sweep-points)\n"
        << "  --crash-stride N   crash every N cycles\n"
        << "  --crash-at LIST    crash at the given cycles "
        << "(comma-separated)\n"
        << "  --fuzz N           N seeded-random crash points per pair\n\n"
        << "options:\n"
        << "  --schemes LIST     comma list or 'all' (default all):\n"
        << "                     pmem | pmem+pcommit | pmem+nolog |\n"
        << "                     atom | proteus | proteus+nolwr\n"
        << "  --workloads LIST   comma list or 'all' (default all "
        << "paper workloads);\n"
        << "                     'gen' selects the generated workload\n"
        << "  --wl-spec k=v,...  generated-workload spec (workload "
        << "'gen')\n"
        << "  --wl-spec-file F   spec file; --wl-spec overrides on "
        << "top\n"
        << "  --sweep-points N   target points per pair for --sweep "
        << "(default 50)\n"
        << "  --seed N           workload + fuzz seed (default 11)\n"
        << "  --threads N        simulated cores (default 1; byte-exact\n"
        << "                     oracle checking requires 1)\n"
        << "  --scale N          divide Table 2 SimOps (default 250)\n"
        << "  --init-scale N     divide Table 2 InitOps (default 100)\n"
        << "  --jobs J           host worker threads (0 = all cores)\n"
        << "  --json FILE        write per-crash-point rows as JSON\n"
        << "  --max-violations N report at most N bytes per point "
        << "(default 8)\n"
        << "  --no-serialize     skip the committed-prefix replay check\n"
        << "  --check            arm the persistency-order checker on "
        << "each pair's\n"
        << "                     reference run (see proteus-check)\n"
        << "  --no-trace-cache   rebuild traces per run instead of "
        << "sharing cached bundles\n"
        << "  --no-cycle-skip    tick every cycle instead of skipping "
        << "quiescent spans (same results, slower)\n"
        << "  --faults SPEC      NVM media fault injection, e.g.\n"
        << "                     torn=0.01,readflip=1e-4,detect=8,"
        << "correct=1\n"
        << "                     (crash points with detected media loss\n"
        << "                     pass as detected-unrecoverable; silent\n"
        << "                     corruption always fails)\n"
        << "  --fault-seed N     fault-draw seed (default 1)\n"
        << "  --break-recovery   testing hook: skip recovery (expect "
        << "violations)\n";
    return 2;
}

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

std::vector<LogScheme>
parseSchemes(const std::string &arg)
{
    if (arg == "all") {
        return {LogScheme::PMEM,    LogScheme::PMEMPCommit,
                LogScheme::PMEMNoLog, LogScheme::ATOM,
                LogScheme::Proteus, LogScheme::ProteusNoLWR};
    }
    std::vector<LogScheme> out;
    for (const std::string &name : splitList(arg))
        out.push_back(parseScheme(name));
    return out;
}

std::vector<WorkloadKind>
parseWorkloads(const std::string &arg)
{
    if (arg == "all") {
        // The six paper workloads plus the linked list (Table 3): crash
        // consistency must hold everywhere, not just where Figure 6
        // reports performance.
        std::vector<WorkloadKind> all = allPaperWorkloads();
        all.push_back(WorkloadKind::LinkedList);
        return all;
    }
    std::vector<WorkloadKind> out;
    for (const std::string &name : splitList(arg))
        out.push_back(parseWorkload(name));
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    CrashTestOptions opts;
    opts.schemes = parseSchemes("all");
    opts.workloads = parseWorkloads("all");
    std::string wlSpec;
    std::string wlSpecFile;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal(arg + " needs a value");
                return argv[++i];
            };
            if (arg == "--sweep") {
                opts.mode = CrashMode::Stride;
                opts.stride = 0;
            } else if (arg == "--sweep-points") {
                opts.autoPoints =
                    static_cast<unsigned>(std::stoul(value()));
            } else if (arg == "--crash-stride") {
                opts.mode = CrashMode::Stride;
                opts.stride = std::stoull(value());
            } else if (arg == "--crash-at") {
                opts.mode = CrashMode::Points;
                opts.points.clear();
                for (const std::string &c : splitList(value()))
                    opts.points.push_back(std::stoull(c));
            } else if (arg == "--fuzz") {
                opts.mode = CrashMode::Fuzz;
                opts.fuzzCount =
                    static_cast<unsigned>(std::stoul(value()));
            } else if (arg == "--schemes") {
                opts.schemes = parseSchemes(value());
            } else if (arg == "--workloads") {
                opts.workloads = parseWorkloads(value());
            } else if (arg == "--wl-spec") {
                wlSpec = value();
            } else if (arg == "--wl-spec-file") {
                wlSpecFile = value();
            } else if (arg == "--seed") {
                opts.seed = std::stoull(value());
            } else if (arg == "--threads") {
                opts.threads =
                    static_cast<unsigned>(std::stoul(value()));
            } else if (arg == "--scale") {
                opts.scale = static_cast<unsigned>(std::stoul(value()));
            } else if (arg == "--init-scale") {
                opts.initScale =
                    static_cast<unsigned>(std::stoul(value()));
            } else if (arg == "--jobs") {
                opts.jobs = static_cast<unsigned>(std::stoul(value()));
            } else if (arg == "--json") {
                opts.jsonPath = value();
            } else if (arg == "--max-violations") {
                opts.maxViolations = std::stoul(value());
            } else if (arg == "--no-serialize") {
                opts.checkSerialization = false;
            } else if (arg == "--check") {
                opts.check = true;
            } else if (arg == "--no-trace-cache") {
                opts.useTraceCache = false;
            } else if (arg == "--no-cycle-skip") {
                opts.cycleSkip = false;
            } else if (arg == "--faults") {
                opts.faults = faults::parseFaultSpec(value(),
                                                     opts.faults);
            } else if (arg == "--fault-seed") {
                opts.faults.seed = std::stoull(value());
            } else if (arg == "--break-recovery") {
                opts.breakRecovery = true;
            } else if (arg == "--help" || arg == "-h") {
                return usage();
            } else {
                std::cerr << "unknown option: " << arg << "\n";
                return usage();
            }
        }

        if (opts.scale == 0)
            fatal("--scale must be >= 1");
        if (opts.initScale == 0)
            fatal("--init-scale must be >= 1");
        if (opts.threads == 0 || opts.threads > 32)
            fatal("--threads must be in [1, 32], got " +
                  std::to_string(opts.threads));
        if (!wlSpecFile.empty())
            opts.gen = wlgen::GenSpec::parseFile(wlSpecFile);
        if (!wlSpec.empty())
            opts.gen = wlgen::GenSpec::parse(wlSpec, opts.gen);

        std::cout << "crash-testing " << opts.schemes.size()
                  << " schemes x " << opts.workloads.size()
                  << " workloads (" << toString(opts.mode) << ", seed "
                  << opts.seed << ")\n";
        const CrashTestSummary summary = runCrashTests(opts, std::cout);

        std::cout << summary.crashPoints << " crash points, "
                  << summary.violations << " violations";
        if (opts.faults.enabled())
            std::cout << ", " << summary.detectedUnrecoverable
                      << " detected-unrecoverable";
        if (!opts.jsonPath.empty())
            std::cout << " -> " << opts.jsonPath;
        std::cout << "\n"
                  << (summary.ok ? "CONSISTENT" : "INCONSISTENT")
                  << "\n";
        return summary.ok ? 0 : 1;
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 2;
    } catch (const PanicError &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
