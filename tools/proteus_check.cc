/**
 * @file
 * proteus-check: the persistency-order checker front end.
 *
 *   proteus-check run <workload|all> [--scheme S|all] [options]
 *   proteus-check replay <file.ptrace> [options]
 *   proteus-check rules [--scheme S]
 *
 * `run` replays the workload through the full timing machine with the
 * online happens-before checker armed and reports every ordering
 * violation crashtest-style (guilty transaction, store ordinal, the
 * missing edge, a one-command repro line). `--check-mutate N` instead
 * runs the seeded mutation campaign: for every rule armed for the
 * scheme, one injected protocol violation that the checker must catch
 * — the CI gate proving the rules are live.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/rules.hh"
#include "harness/check_runner.hh"
#include "harness/trace_io.hh"
#include "sim/logging.hh"
#include "workloads/registry.hh"

using namespace proteus;

namespace {

int
usage()
{
    std::cout
        << "usage: proteus-check <command> [args]\n\n"
        << "commands:\n"
        << "  run <workload|all>  check one workload (or every paper "
        << "workload)\n"
        << "  replay <file>       check a .ptrace trace snapshot\n"
        << "  rules               print the rule set per scheme\n\n"
        << "options:\n"
        << "  --scheme S|all     pmem | pmem+pcommit | pmem+nolog | "
        << "atom |\n"
        << "                     proteus | proteus+nolwr | all "
        << "(default: all)\n"
        << "  --check-mutate N   seeded mutation campaign: inject one "
        << "violation per\n"
        << "                     armed rule (seed N) and require every "
        << "rule to fire\n"
        << "  --json FILE        deterministic JSON verdict (no "
        << "wall-clock)\n"
        << "  --jobs N           host worker threads (0 = all cores)\n"
        << "  --scale N          divide Table 2 SimOps (default 200)\n"
        << "  --init-scale N     divide Table 2 InitOps (default 1)\n"
        << "  --threads N        simulated cores (default 4)\n"
        << "  --seed N           workload RNG seed\n"
        << "  --dram             DRAM timing (Section 7.2)\n"
        << "  --set k=v          config override\n"
        << "  --no-cycle-skip    tick every cycle (verdicts are "
        << "bit-identical)\n"
        << "  --wl-spec k=v,...  generated-workload spec (workload "
        << "'gen')\n";
    return 2;
}

/** Options BenchOptions::parse does not know about. */
struct CliExtras
{
    std::vector<LogScheme> schemes;     ///< empty = all
    long mutateSeed = -1;               ///< --check-mutate N (-1 = off)
};

CliExtras
extractExtras(std::vector<char *> &args)
{
    CliExtras extras;
    for (std::size_t i = 1; i < args.size();) {
        const std::string arg = args[i];
        auto take_value = [&](unsigned count) {
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() +
                           static_cast<std::ptrdiff_t>(i + count));
        };
        if (arg == "--scheme" && i + 1 < args.size()) {
            if (std::string(args[i + 1]) != "all")
                extras.schemes.push_back(parseScheme(args[i + 1]));
            take_value(2);
        } else if (arg == "--check-mutate" && i + 1 < args.size()) {
            extras.mutateSeed = std::stol(args[i + 1]);
            take_value(2);
        } else {
            ++i;
        }
    }
    return extras;
}

std::vector<LogScheme>
allSchemes()
{
    return {LogScheme::PMEM,  LogScheme::PMEMPCommit,
            LogScheme::PMEMNoLog, LogScheme::ATOM,
            LogScheme::Proteus,   LogScheme::ProteusNoLWR};
}

int
cmdRules(const CliExtras &extras)
{
    const auto schemes =
        extras.schemes.empty() ? allSchemes() : extras.schemes;
    std::cout << "rules:\n";
    for (unsigned r = 0; r < analysis::numRules; ++r) {
        const auto rule = static_cast<analysis::Rule>(r);
        std::cout << "  " << analysis::toString(rule) << ": "
                  << analysis::describe(rule) << "\n";
    }
    std::cout << "\narmed per scheme (with a recorded write history):\n";
    for (LogScheme s : schemes) {
        const bool adr = s != LogScheme::PMEMPCommit;
        const auto armed = analysis::rulesForScheme(s, adr, true);
        std::cout << "  " << toString(s) << ":";
        for (unsigned r = 0; r < analysis::numRules; ++r) {
            if (armed[r]) {
                std::cout << " "
                          << analysis::toString(
                                 static_cast<analysis::Rule>(r));
            }
        }
        std::cout << "\n";
    }
    return 0;
}

int
cmdRun(const std::vector<WorkloadKind> &kinds, const CliExtras &extras,
       const BenchOptions &opts)
{
    const auto schemes =
        extras.schemes.empty() ? allSchemes() : extras.schemes;

    if (extras.mutateSeed >= 0) {
        // Mutation campaign: every (scheme, workload) pair must catch
        // every armed rule's injected violation.
        bool all_ok = true;
        std::string json;
        for (LogScheme scheme : schemes) {
            for (WorkloadKind kind : kinds) {
                ProgressReporter progress(std::cerr);
                const auto rows = runMutationCampaign(
                    scheme, kind, opts,
                    static_cast<std::uint64_t>(extras.mutateSeed),
                    &progress);
                std::cout << formatMutationReport(scheme, kind, rows);
                json += mutationRowsJson(
                    scheme, kind,
                    static_cast<std::uint64_t>(extras.mutateSeed),
                    rows);
                all_ok = all_ok && allFired(rows);
            }
        }
        if (!opts.jsonPath.empty())
            writeJsonFile(opts.jsonPath, json);
        return all_ok ? 0 : 1;
    }

    ProgressReporter progress(std::cerr);
    const auto rows = runCheckBatch(schemes, kinds, opts, &progress);
    for (const CheckRow &row : rows)
        std::cout << formatCheckReport(row);
    if (!opts.jsonPath.empty())
        writeJsonFile(opts.jsonPath, checkRowsJson(rows));
    return allPass(rows) ? 0 : 1;
}

int
cmdReplay(const std::string &path, const BenchOptions &opts)
{
    const auto bundle = loadTraceBundle(path);
    const CheckRow row = runCheckOnBundle(
        bundle, opts, "proteus-check replay " + path);
    std::cout << formatCheckReport(row);
    if (!opts.jsonPath.empty())
        writeJsonFile(opts.jsonPath, checkRowsJson({row}));
    return row.outcome.pass() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    if (command == "--help" || command == "-h")
        return usage();
    if (command != "run" && command != "replay" && command != "rules") {
        std::cerr << "unknown command: " << command << "\n";
        return usage();
    }
    const bool takes_operand = command != "rules";
    if (takes_operand && argc < 3) {
        std::cerr << command << " requires a "
                  << (command == "replay" ? "trace file" : "workload")
                  << "\n";
        return usage();
    }

    try {
        std::vector<char *> args;
        args.push_back(argv[0]);
        for (int i = takes_operand ? 3 : 2; i < argc; ++i)
            args.push_back(argv[i]);
        const CliExtras extras = extractExtras(args);
        const BenchOptions opts = BenchOptions::parse(
            static_cast<int>(args.size()), args.data());
        if (command == "rules")
            return cmdRules(extras);
        if (command == "replay")
            return cmdReplay(argv[2], opts);
        const std::string operand = argv[2];
        const std::vector<WorkloadKind> kinds =
            operand == "all" ? allPaperWorkloads()
                             : std::vector<WorkloadKind>{
                                   parseWorkload(operand)};
        return cmdRun(kinds, extras, opts);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
