/**
 * @file
 * proteus-trace: record, inspect, and verify .ptrace trace snapshots.
 *
 *   proteus-trace record <workload> --out FILE [--scheme S]
 *                 [--with-history] [--scale N] [--init-scale N]
 *                 [--threads N] [--seed N]
 *   proteus-trace info   <file.ptrace>
 *   proteus-trace verify <file.ptrace>
 *
 * A recorded snapshot replays with proteus-sim replay (or any code
 * using loadTraceBundle) and produces bit-identical RunResults to
 * rebuilding the traces in-process — the round-trip tests assert this
 * for every scheme.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/trace_bundle.hh"
#include "harness/trace_io.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

using namespace proteus;

namespace {

int
usage()
{
    std::cout
        << "usage: proteus-trace <command> [args]\n\n"
        << "commands:\n"
        << "  record <workload>  execute the workload functionally and "
        << "save its traces\n"
        << "  info <file>        print a snapshot's header, sections, "
        << "and counters\n"
        << "  verify <file>      CRC-check and cross-validate a "
        << "snapshot\n\n"
        << "options (record):\n"
        << "  --out FILE         output path (required)\n"
        << "  --scheme S         pmem | pmem+pcommit | pmem+nolog |\n"
        << "                     atom | proteus | proteus+nolwr "
        << "(default proteus)\n"
        << "  --with-history     also record the replayable write "
        << "history (crash oracle)\n"
        << "  --scale N          divide Table 2 SimOps (default 200)\n"
        << "  --init-scale N     divide Table 2 InitOps (default 1)\n"
        << "  --threads N        simulated cores (default 4)\n"
        << "  --seed N           workload RNG seed (default 1)\n"
        << "  --log-area-bytes N per-thread log area size "
        << "(default 1 MiB)\n"
        << "  --elements-per-node N  linked-list elements per node "
        << "(LL only)\n"
        << "  --wl-spec k=v,...  generated-workload spec (workload "
        << "'gen')\n"
        << "  --wl-spec-file F   spec file; --wl-spec overrides on "
        << "top\n";
    return 2;
}

int
cmdRecord(int argc, char **argv)
{
    if (argc < 3) {
        std::cerr << "record requires a workload\n";
        return usage();
    }
    TraceBundleKey key;
    key.kind = parseWorkload(argv[2]);
    key.params.scale = 200;     // the bench binaries' default size
    std::string out;
    std::string wl_spec;
    std::string wl_spec_file;
    bool with_history = false;

    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--out") {
            out = value();
        } else if (arg == "--scheme") {
            key.scheme = parseScheme(value());
        } else if (arg == "--with-history") {
            with_history = true;
        } else if (arg == "--scale") {
            key.params.scale =
                static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--init-scale") {
            key.params.initScale =
                static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--threads") {
            key.params.threads =
                static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--seed") {
            key.params.seed = std::stoull(value());
        } else if (arg == "--log-area-bytes") {
            key.params.logAreaBytes = std::stoull(value());
        } else if (arg == "--elements-per-node") {
            key.llOpts.elementsPerNode =
                static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--wl-spec") {
            wl_spec = value();
        } else if (arg == "--wl-spec-file") {
            wl_spec_file = value();
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return usage();
        }
    }
    if (out.empty())
        fatal("record requires --out FILE");
    if (key.params.scale == 0)
        fatal("--scale must be >= 1");
    if (key.params.initScale == 0)
        fatal("--init-scale must be >= 1");
    if (!wl_spec_file.empty())
        key.gen = wlgen::GenSpec::parseFile(wl_spec_file);
    if (!wl_spec.empty())
        key.gen = wlgen::GenSpec::parse(wl_spec, key.gen);

    std::cout << "recording " << key.describe() << "...\n";
    const auto bundle = TraceBundle::build(key, nullptr, with_history);
    saveTraceBundle(*bundle, out);

    const PtraceFileInfo info = inspectTraceFile(out);
    std::cout << "wrote " << out << " (" << info.fileBytes << " bytes, "
              << bundle->totalOps() << " micro-ops, "
              << bundle->totalTxs() << " transactions, "
              << (bundle->history ? bundle->history->events().size()
                                  : 0)
              << " history events)\n";
    return 0;
}

int
cmdInfo(const std::string &path)
{
    const PtraceFileInfo info = inspectTraceFile(path);
    std::cout << path << ": ptrace v" << info.version << ", "
              << info.fileBytes << " bytes\n"
              << "key:        " << info.key.describe() << "\n"
              << "micro-ops:  " << info.totalOps << "\n"
              << "payloads:   " << info.totalPayloads << "\n"
              << "txs:        " << info.totalTxs << "\n"
              << "vol pages:  " << info.volatilePages << "\n"
              << "nvm pages:  " << info.nvmPages << "\n"
              << "locks:      " << info.lockCount << "\n"
              << "history:    " << info.historyEvents << " events\n"
              << "sections:\n";
    bool all_ok = true;
    for (const PtraceSectionInfo &s : info.sections) {
        std::cout << "  " << s.tag << "  " << s.bytes << " bytes  crc "
                  << (s.crcOk ? "ok" : "MISMATCH") << "\n";
        all_ok = all_ok && s.crcOk;
    }
    return all_ok ? 0 : 1;
}

int
cmdVerify(const std::string &path)
{
    const std::vector<std::string> problems = verifyTraceFile(path);
    if (problems.empty()) {
        std::cout << path << ": OK\n";
        return 0;
    }
    for (const std::string &p : problems)
        std::cout << path << ": " << p << "\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    try {
        if (command == "record")
            return cmdRecord(argc, argv);
        if ((command == "info" || command == "verify") && argc >= 3)
            return command == "info" ? cmdInfo(argv[2])
                                     : cmdVerify(argv[2]);
        if (command == "--help" || command == "-h")
            return usage();
        std::cerr << "unknown command: " << command << "\n";
        return usage();
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    } catch (const PanicError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
