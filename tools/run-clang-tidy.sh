#!/usr/bin/env bash
# Run clang-tidy (config in .clang-tidy) over the first-party sources
# using the compile database CMake exports into the build directory.
#
#   tools/run-clang-tidy.sh [build-dir]    (default: build)
#
# Exits 0 with a notice when clang-tidy is not installed, so the
# script is safe to call from environments without LLVM; CI installs
# clang-tidy and therefore gets the real gate. WarningsAsErrors in
# .clang-tidy makes any finding fatal.

set -u
cd "$(dirname "$0")/.."

build_dir="${1:-build}"

tidy=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17; do
    if command -v "$candidate" >/dev/null 2>&1; then
        tidy="$candidate"
        break
    fi
done
if [ -z "$tidy" ]; then
    echo "run-clang-tidy: clang-tidy not installed; skipping (CI runs it)"
    exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run-clang-tidy: $build_dir/compile_commands.json missing;"
    echo "  configure first: cmake -B $build_dir -S ."
    exit 1
fi

# First-party translation units only; gtest/benchmark headers are
# filtered by HeaderFilterRegex in .clang-tidy.
files=$(find src tools bench examples -name '*.cc' | sort)

echo "run-clang-tidy: $tidy over $(echo "$files" | wc -l) files"
# shellcheck disable=SC2086
"$tidy" -p "$build_dir" --quiet $files
status=$?
if [ $status -ne 0 ]; then
    echo "run-clang-tidy: findings above (WarningsAsErrors=*)"
    exit $status
fi
echo "run-clang-tidy: clean"
