#!/usr/bin/env bash
# det-lint: grep-level determinism lint for the proteus tree.
#
# The simulator's contract is bit-identical output for a given seed at
# any --jobs level (ROADMAP.md, and now the byte-identical guarantees
# in tests/test_analysis.cc). The classic ways that contract rots are
# textual, so a grep catches them before a flaky CI run does:
#
#   pointer-keyed-container   map/set keyed on a raw pointer: iteration
#                             order tracks allocation addresses, which
#                             differ run to run under ASLR.
#   unseeded-rng              std::random_device, rand()/srand():
#                             results that cannot be reproduced from
#                             the --seed flag.
#   wallclock-seed            time(NULL)-style seeding, same problem.
#   inline-unordered-iteration  range-for directly over an unordered
#                             container expression: fine for
#                             accumulation into order-insensitive
#                             state, but a report/JSON writer fed this
#                             way emits rows in hash order. Iterating a
#                             named unordered member is not flagged
#                             (too noisy); the rule exists to force a
#                             second look at the inline case, where a
#                             sort is cheapest to add.
#
# False positives are suppressed per line with a trailing
# `// det-lint: ok(<reason>)` comment, which keeps every waiver
# greppable and reviewed.
#
# Usage: tools/lint-determinism.sh   (exits nonzero on findings)

set -u
cd "$(dirname "$0")/.."

dirs="src tools bench tests examples"
fail=0

flag() {
    local rule="$1" pattern="$2" desc="$3"
    local hits
    hits=$(grep -rnE --include='*.cc' --include='*.hh' "$pattern" \
               $dirs 2>/dev/null | grep -v 'det-lint: ok' || true)
    if [ -n "$hits" ]; then
        echo "det-lint FAIL [$rule]: $desc"
        echo "$hits" | sed 's/^/  /'
        echo
        fail=1
    fi
}

flag pointer-keyed-container \
    '(map|set)<[A-Za-z_:0-9 ]+\*' \
    'container keyed on a raw pointer (iteration order = ASLR)'

flag unseeded-rng \
    'std::random_device|[^a-zA-Z_](s?rand) *\(' \
    'RNG not derived from the --seed flag'

flag wallclock-seed \
    '[^a-zA-Z_]time *\( *(NULL|nullptr|0) *\)' \
    'wall-clock used as a seed or input'

flag inline-unordered-iteration \
    'for *\([^)]*:[^)]*unordered' \
    'range-for over an inline unordered expression (hash order)'

if [ "$fail" -ne 0 ]; then
    echo "det-lint: findings above; fix or annotate with" \
         "'// det-lint: ok(<reason>)'"
    exit 1
fi
echo "det-lint: clean"
