/**
 * @file
 * proteus-txstats: offline reporting over transaction flight-recorder
 * files (--tx-stats FILE, JSON form).
 *
 *   proteus-txstats report <file.json> [--per-workload]
 *   proteus-txstats diff   <a.json> <b.json>
 *
 * report merges every workload's per-stage histogram into one
 * distribution per (scheme, stage) — the qhist arrays carry the exact
 * HDR percentile state, so merged p50/p95/p99 are computed from the
 * recorded samples, not averaged from per-row percentiles — and prints
 * per-stage latency tables, the per-transaction critical-path
 * attribution, and the CPI cross-check (the recorder's slotTotal
 * buckets must equal the CPI-stack commit-slot counts bucket for
 * bucket; a mismatch means lost or double-counted cycles and fails the
 * command).
 *
 * diff matches rows of two files by (scheme, workload) and prints
 * per-stage percentile deltas, for before/after comparisons across a
 * config or code change.
 */

#include <algorithm>
#include <array>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_reader.hh"
#include "obs/tx_tracker.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace proteus;

namespace {

int
usage()
{
    std::cout
        << "usage: proteus-txstats <command> [args]\n\n"
        << "commands:\n"
        << "  report <file.json> [--per-workload]\n"
        << "      per-scheme stage latency percentiles (merged across\n"
        << "      workloads), critical-path attribution, and the CPI\n"
        << "      cross-check; exits 1 if the cross-check fails\n"
        << "  diff <a.json> <b.json>\n"
        << "      per-stage percentile deltas for rows present in both\n"
        << "      files, matched by (scheme, workload)\n";
    return 2;
}

/** One stage snapshot read back from a tx-stats row. */
struct StageData
{
    std::uint64_t count = 0;
    double sum = 0;
    double max = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    std::vector<std::pair<double, std::uint64_t>> qhist;
};

/** One row of a tx-stats file, decoded. */
struct Row
{
    std::string scheme;
    std::string workload;
    std::uint64_t cycles = 0;
    std::uint64_t committedTxs = 0;
    std::array<std::uint64_t, obs::numTxSlots> cpi{};
    std::array<std::uint64_t, obs::numTxSlots> slotTotal{};
    std::array<std::uint64_t, obs::numTxSlots> critPath{};
    std::array<StageData, obs::numTxStages> stages;
};

std::array<std::uint64_t, obs::numTxSlots>
readSlots(const obs::JsonValue &v)
{
    std::array<std::uint64_t, obs::numTxSlots> out{};
    for (unsigned s = 0; s < obs::numTxSlots; ++s)
        out[s] = v.at(obs::toString(static_cast<obs::TxSlot>(s))).asU64();
    return out;
}

StageData
readStage(const obs::JsonValue &v)
{
    StageData d;
    d.count = v.at("count").asU64();
    d.sum = v.at("sum").asNumber();
    d.max = v.at("max").asNumber();
    d.p50 = v.at("p50").asNumber();
    d.p95 = v.at("p95").asNumber();
    d.p99 = v.at("p99").asNumber();
    for (const obs::JsonValue &pair : v.at("qhist").array) {
        if (pair.array.size() != 2)
            fatal("malformed qhist entry: expected [value, count]");
        d.qhist.emplace_back(pair.array[0].asNumber(),
                             pair.array[1].asU64());
    }
    return d;
}

std::vector<Row>
readRows(const std::string &path)
{
    const obs::JsonValue doc = obs::parseJsonFile(path);
    if (doc.at("version").asU64() != 1)
        fatal(path, ": unsupported tx-stats version");
    std::vector<Row> rows;
    for (const obs::JsonValue &rv : doc.at("rows").array) {
        Row row;
        row.scheme = rv.at("scheme").asString();
        row.workload = rv.at("workload").asString();
        row.cycles = rv.at("cycles").asU64();
        row.committedTxs = rv.at("counters").at("committedTxs").asU64();
        row.cpi = readSlots(rv.at("cpi"));
        row.slotTotal = readSlots(rv.at("slotTotal"));
        row.critPath = readSlots(rv.at("critPath"));
        const obs::JsonValue &stages = rv.at("stages");
        for (unsigned s = 0; s < obs::numTxStages; ++s)
            row.stages[s] = readStage(
                stages.at(obs::toString(static_cast<obs::TxStage>(s))));
        rows.push_back(std::move(row));
    }
    return rows;
}

std::string
fmtCycles(double v)
{
    std::ostringstream os;
    if (v == static_cast<double>(static_cast<std::int64_t>(v)))
        os << static_cast<std::int64_t>(v);
    else
        os << std::fixed << std::setprecision(1) << v;
    return os.str();
}

void
printStageTable(const std::array<StageData, obs::numTxStages> &stages)
{
    std::cout << "  " << std::left << std::setw(22) << "stage"
              << std::right << std::setw(10) << "count"
              << std::setw(12) << "mean" << std::setw(12) << "p50"
              << std::setw(12) << "p95" << std::setw(12) << "p99"
              << std::setw(12) << "max" << "\n";
    for (unsigned s = 0; s < obs::numTxStages; ++s) {
        const StageData &d = stages[s];
        if (d.count == 0)
            continue;
        const double mean = d.sum / static_cast<double>(d.count);
        std::cout << "  " << std::left << std::setw(22)
                  << obs::toString(static_cast<obs::TxStage>(s))
                  << std::right << std::setw(10) << d.count
                  << std::setw(12) << fmtCycles(mean)
                  << std::setw(12) << fmtCycles(d.p50)
                  << std::setw(12) << fmtCycles(d.p95)
                  << std::setw(12) << fmtCycles(d.p99)
                  << std::setw(12) << fmtCycles(d.max) << "\n";
    }
}

/** Merge one stage across rows by replaying the recorded qhists.
 *  quantizeKey is idempotent on qhist keys, so replaying them as
 *  samples reconstructs the exact percentile state of a live merge. */
StageData
mergeStage(const std::vector<const Row *> &rows, unsigned stage)
{
    stats::StatRegistry reg;
    stats::Distribution dist(reg, "merge", "", 0, 16384, 64);
    StageData out;
    for (const Row *row : rows) {
        const StageData &d = row->stages[stage];
        out.count += d.count;
        out.sum += d.sum;
        out.max = std::max(out.max, d.max);
        for (const auto &[value, count] : d.qhist)
            dist.sample(value, count);
    }
    out.p50 = dist.percentile(50);
    out.p95 = dist.percentile(95);
    out.p99 = dist.percentile(99);
    for (const auto &[value, count] : dist.quantized())
        out.qhist.emplace_back(value, count);
    return out;
}

int
cmdReport(const std::string &path, bool per_workload)
{
    const std::vector<Row> rows = readRows(path);
    if (rows.empty()) {
        std::cout << path << ": no rows\n";
        return 0;
    }

    // Group rows per scheme, preserving first-appearance order.
    std::vector<std::string> schemes;
    std::map<std::string, std::vector<const Row *>> byScheme;
    for (const Row &row : rows) {
        if (byScheme.find(row.scheme) == byScheme.end())
            schemes.push_back(row.scheme);
        byScheme[row.scheme].push_back(&row);
    }

    std::cout << path << ": " << rows.size() << " rows, "
              << schemes.size() << " schemes\n";

    bool cpi_ok = true;
    for (const std::string &scheme : schemes) {
        const std::vector<const Row *> &group = byScheme[scheme];
        std::uint64_t txs = 0;
        std::array<std::uint64_t, obs::numTxSlots> crit{};
        for (const Row *row : group) {
            txs += row->committedTxs;
            for (unsigned s = 0; s < obs::numTxSlots; ++s)
                crit[s] += row->critPath[s];
        }

        std::cout << "\n== " << scheme << " (" << group.size()
                  << " workloads, " << txs << " committed txs) ==\n";
        std::array<StageData, obs::numTxStages> merged;
        for (unsigned s = 0; s < obs::numTxStages; ++s)
            merged[s] = mergeStage(group, s);
        printStageTable(merged);

        std::uint64_t crit_total = 0;
        for (std::uint64_t c : crit)
            crit_total += c;
        std::cout << "  critical path:";
        bool first = true;
        for (unsigned s = 0; s < obs::numTxSlots; ++s) {
            if (crit[s] == 0)
                continue;
            std::cout << (first ? " " : ", ")
                      << obs::toString(static_cast<obs::TxSlot>(s))
                      << " " << crit[s];
            if (crit_total) {
                std::cout << " ("
                          << (100 * crit[s] + crit_total / 2) /
                                 crit_total
                          << "%)";
            }
            first = false;
        }
        if (first)
            std::cout << " (none recorded)";
        std::cout << "\n";

        // The recorder's per-bucket commit-slot totals must equal the
        // CPI stack the core accounted independently.
        unsigned bad = 0;
        for (const Row *row : group) {
            for (unsigned s = 0; s < obs::numTxSlots; ++s) {
                if (row->slotTotal[s] != row->cpi[s]) {
                    ++bad;
                    std::cout << "  CPI MISMATCH " << row->workload
                              << " "
                              << obs::toString(
                                     static_cast<obs::TxSlot>(s))
                              << ": slotTotal " << row->slotTotal[s]
                              << " != cpi " << row->cpi[s] << "\n";
                }
            }
        }
        std::cout << "  CPI cross-check: "
                  << (bad == 0 ? "PASS" : "FAIL") << " ("
                  << group.size() << " rows x " << obs::numTxSlots
                  << " buckets)\n";
        cpi_ok = cpi_ok && bad == 0;

        if (per_workload) {
            for (const Row *row : group) {
                std::cout << "\n-- " << scheme << " / " << row->workload
                          << " (" << row->committedTxs << " txs, "
                          << row->cycles << " cycles) --\n";
                printStageTable(row->stages);
            }
        }
    }
    return cpi_ok ? 0 : 1;
}

int
cmdDiff(const std::string &path_a, const std::string &path_b)
{
    const std::vector<Row> a = readRows(path_a);
    const std::vector<Row> b = readRows(path_b);
    std::map<std::pair<std::string, std::string>, const Row *> index;
    for (const Row &row : b)
        index[{row.scheme, row.workload}] = &row;

    auto delta = [](double from, double to) {
        std::ostringstream os;
        os << fmtCycles(from) << " -> " << fmtCycles(to);
        if (from > 0) {
            const double pct = 100.0 * (to - from) / from;
            os << " (" << (pct >= 0 ? "+" : "") << std::fixed
               << std::setprecision(1) << pct << "%)";
        }
        return os.str();
    };

    std::size_t matched = 0;
    for (const Row &row : a) {
        const auto it = index.find({row.scheme, row.workload});
        if (it == index.end())
            continue;
        ++matched;
        const Row &other = *it->second;
        std::cout << row.scheme << " / " << row.workload << "\n";
        for (unsigned s = 0; s < obs::numTxStages; ++s) {
            const StageData &da = row.stages[s];
            const StageData &db = other.stages[s];
            if (da.count == 0 && db.count == 0)
                continue;
            std::cout << "  " << std::left << std::setw(22)
                      << obs::toString(static_cast<obs::TxStage>(s))
                      << " p50 " << delta(da.p50, db.p50) << ", p95 "
                      << delta(da.p95, db.p95) << ", p99 "
                      << delta(da.p99, db.p99) << "\n";
        }
    }
    std::cout << matched << " row(s) matched by (scheme, workload); "
              << a.size() - matched << " only in " << path_a << ", "
              << b.size() - matched << " only in " << path_b << "\n";
    return matched ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    try {
        if (command == "report") {
            if (argc < 3)
                return usage();
            bool per_workload = false;
            for (int i = 3; i < argc; ++i) {
                if (std::string(argv[i]) == "--per-workload")
                    per_workload = true;
                else
                    fatal("unknown report option: ", argv[i]);
            }
            return cmdReport(argv[2], per_workload);
        }
        if (command == "diff") {
            if (argc != 4)
                return usage();
            return cmdDiff(argv[2], argv[3]);
        }
        if (command == "--help" || command == "-h")
            return usage();
        std::cerr << "unknown command: " << command << "\n";
        return usage();
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
