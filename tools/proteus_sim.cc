/**
 * @file
 * proteus-sim: the command-line front end to the simulator.
 *
 *   proteus-sim run    <workload> [--scheme S] [--stats] [--json]
 *   proteus-sim replay <file.ptrace> [--stats] [--json]
 *   proteus-sim crash  <workload> [--scheme S] [--at PERCENT]
 *   proteus-sim matrix [--jobs N] [--json FILE]
 *   proteus-sim list
 *
 * plus the shared options every harness binary takes: --scale,
 * --init-scale, --threads, --seed, --dram, --set key=value, and the
 * observability flags --stats-interval/--stats-out/--trace-events/
 * --trace-categories.
 */

#include <cstring>
#include <iostream>
#include <vector>

#include "harness/check_runner.hh"
#include "harness/experiments.hh"
#include "harness/parallel_runner.hh"
#include "harness/system.hh"
#include "harness/trace_io.hh"
#include "recovery/recovery.hh"
#include "sim/logging.hh"
#include "workloads/registry.hh"

using namespace proteus;

namespace {

int
usage()
{
    std::cout
        << "usage: proteus_sim <command> [args]\n\n"
        << "commands:\n"
        << "  run <workload>     simulate one workload to completion\n"
        << "  replay <file>      simulate a .ptrace trace snapshot "
        << "(proteus-trace record)\n"
        << "  crash <workload>   crash partway, recover, validate\n"
        << "  matrix             every scheme x workload, in parallel\n"
        << "  list               show workloads and schemes\n"
        << "  --list-workloads   show every workload with its extra "
        << "knobs\n\n"
        << "options (run/crash):\n"
        << "  --scheme S         pmem | pmem+pcommit | pmem+nolog |\n"
        << "                     atom | proteus | proteus+nolwr\n"
        << "  --at PERCENT       crash point as %% of the full run "
        << "(crash; default 50)\n"
        << "  --stats            dump the full statistics registry\n"
        << "  --json             dump statistics as JSON\n"
        << "  --scale N          divide Table 2 SimOps (default 200)\n"
        << "  --init-scale N     divide Table 2 InitOps (default 1)\n"
        << "  --threads N        simulated cores (default 4)\n"
        << "  --seed N           workload RNG seed\n"
        << "  --dram             DRAM timing (Section 7.2)\n"
        << "  --set k=v          config override\n"
        << "  --no-cycle-skip    tick every cycle instead of skipping "
        << "quiescent spans (same results, slower)\n"
        << "  --check            arm the persistency-order checker "
        << "(see proteus-check);\n"
        << "                     any ordering violation fails the run\n"
        << "  --check-mutate N   seeded mutation campaign (run): every "
        << "armed rule must\n"
        << "                     catch one injected violation\n"
        << "  --faults SPEC      NVM media fault injection: comma list "
        << "of torn=RATE,\n"
        << "                     readflip=RATE, bits=N, endurance=N, "
        << "stuck=N, detect=N,\n"
        << "                     correct=N, retries=N, backoff=N, "
        << "seed=N (default: off)\n"
        << "  --fault-seed N     fault-draw seed (default 1)\n"
        << "  --wl-spec k=v,...  generated-workload spec (workload "
        << "'gen')\n"
        << "  --wl-spec-file F   spec file; --wl-spec overrides on "
        << "top\n\n"
        << "observability (run/crash/matrix):\n"
        << "  --stats-interval N sample scalar-stat deltas every N "
        << "cycles\n"
        << "  --stats-out FILE   interval time series (.json or .csv)\n"
        << "  --trace-events FILE\n"
        << "                     Chrome Trace Event JSON; open in "
        << "Perfetto (ui.perfetto.dev)\n"
        << "  --trace-categories LIST\n"
        << "                     comma list of cpu,memctrl,log,lock,all"
        << " (default all)\n"
        << "  --tx-stats FILE    transaction flight-recorder summary "
        << "(.json or .csv; see proteus-txstats)\n"
        << "  --tx-slowest K     retain full timelines for the K "
        << "slowest transactions (default 8)\n\n"
        << "options (matrix):\n"
        << "  --jobs N           host worker threads (0 = all cores)\n"
        << "  --json FILE        write per-run result rows as JSON\n";
    return 2;
}

/** Options the harness parser does not know about. */
struct CliExtras
{
    LogScheme scheme = LogScheme::Proteus;
    unsigned crashPercent = 50;
    bool stats = false;
    bool json = false;
};

/** Strip CLI-only flags, leaving argv for BenchOptions::parse. */
CliExtras
extractExtras(std::vector<char *> &args)
{
    CliExtras extras;
    for (std::size_t i = 1; i < args.size();) {
        const std::string arg = args[i];
        auto take_value = [&](unsigned count) {
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() +
                           static_cast<std::ptrdiff_t>(i + count));
        };
        if (arg == "--scheme" && i + 1 < args.size()) {
            extras.scheme = parseScheme(args[i + 1]);
            take_value(2);
        } else if (arg == "--at" && i + 1 < args.size()) {
            extras.crashPercent = static_cast<unsigned>(
                std::stoul(args[i + 1]));
            take_value(2);
        } else if (arg == "--stats") {
            extras.stats = true;
            take_value(1);
        } else if (arg == "--json") {
            extras.json = true;
            take_value(1);
        } else {
            ++i;
        }
    }
    return extras;
}

void
printSummary(const RunResult &r)
{
    std::cout << "finished:           "
              << (r.finished ? "yes" : "NO (cycle limit)") << "\n"
              << "cycles:             " << r.cycles << "\n"
              << "micro-ops retired:  " << r.retiredOps << "\n"
              << "transactions:       " << r.committedTxs << "\n"
              << "NVM writes:         " << r.nvmWrites << "\n"
              << "NVM reads:          " << r.nvmReads << "\n"
              << "log writes dropped: " << r.logWritesDropped << "\n"
              << "frontend stalls:    " << r.frontendStallCycles
              << "\n"
              << "LLT miss rate:      "
              << TablePrinter::fmt(100.0 * r.lltMissRate, 1) << "%\n";
    // Printed only when injection is armed so default output stays
    // byte-identical to a faultless run.
    if (r.faultStats.enabled) {
        const auto &f = r.faultStats;
        std::cout << "media faults:       " << f.tornWrites << " torn, "
                  << f.wornWrites << " worn, " << f.readFaults
                  << " read; ECC " << f.eccCorrected << " corrected / "
                  << f.eccDetected << " detected, " << f.readRetries
                  << " retries (" << f.retriesExhausted
                  << " exhausted), " << f.poisonedLines
                  << " lines poisoned, " << f.silentFaults
                  << " silent\n";
    }
}

int
cmdList()
{
    std::cout << "workloads:\n";
    for (const WorkloadRegistration &reg : workloadRegistry())
        std::cout << "  " << reg.abbrev << " (" << reg.summary << ")\n";
    std::cout << "\nschemes (Figure 6):\n";
    for (LogScheme s :
         {LogScheme::PMEM, LogScheme::PMEMPCommit,
          LogScheme::PMEMNoLog, LogScheme::ATOM, LogScheme::Proteus,
          LogScheme::ProteusNoLWR}) {
        std::cout << "  " << toString(s) << "\n";
    }
    return 0;
}

int
cmdListWorkloads()
{
    for (const WorkloadRegistration &reg : workloadRegistry()) {
        std::cout << reg.abbrev << " / " << reg.cliName << "\n"
                  << "    " << reg.summary << "\n"
                  << "    knobs: " << reg.knobs << "\n";
    }
    return 0;
}

int
cmdRun(WorkloadKind kind, const CliExtras &extras,
       const BenchOptions &opts)
{
    if (opts.checkMutate >= 0) {
        // Seeded mutation campaign: every armed rule must catch its
        // own injected violation (see tools/proteus-check).
        ProgressReporter progress(std::cerr);
        const auto rows = runMutationCampaign(
            extras.scheme, kind, opts,
            static_cast<std::uint64_t>(opts.checkMutate), &progress);
        std::cout << formatMutationReport(extras.scheme, kind, rows);
        return allFired(rows) ? 0 : 1;
    }

    SystemConfig cfg = opts.makeConfig();
    cfg.logging.scheme = extras.scheme;
    cfg.memCtrl.adr = extras.scheme != LogScheme::PMEMPCommit;
    if (opts.check) {
        cfg.analysis.check = true;
        cfg.analysis.repro = checkReproLine(extras.scheme, kind, opts);
    }

    WorkloadParams params;
    params.threads = opts.threads;
    params.scale = opts.scale;
    params.initScale = opts.initScale;
    params.seed = opts.seed;

    WorkloadExtras wlExtras;
    wlExtras.gen = opts.genSpec();

    std::cout << "running " << toString(kind) << " under "
              << toString(extras.scheme) << " (" << params.threads
              << " cores)...\n";
    FullSystem system(cfg, kind, params, wlExtras);
    const RunResult r = system.run();
    printSummary(r);
    std::cout << "kernel steps:       " << system.sim().kernelSteps()
              << " (" << system.sim().skippedCycles()
              << " cycles skipped)\n";
    if (!cfg.obs.txStats.empty() && r.txStats) {
        obs::writeTxStatsFile(
            cfg.obs.txStats,
            {makeTxStatsRow(opts, extras.scheme, kind, r)});
    }

    bool check_ok = true;
    if (opts.check && r.check) {
        CheckRow row{extras.scheme, kind, r, *r.check};
        std::cout << formatCheckReport(row);
        check_ok = r.check->pass();
    }

    const std::string err = system.workload().checkInvariants(
        system.heap().volatileImage());
    std::cout << "invariants:         "
              << (err.empty() ? "OK" : err) << "\n";
    if (extras.json)
        system.sim().statsRegistry().dumpJson(std::cout);
    else if (extras.stats)
        system.sim().statsRegistry().dump(std::cout);
    return r.finished && err.empty() && check_ok ? 0 : 1;
}

int
cmdReplay(const std::string &path, const CliExtras &extras,
          const BenchOptions &opts)
{
    const auto bundle = loadTraceBundle(path);
    SystemConfig cfg = opts.makeConfig();
    cfg.logging.scheme = bundle->key.scheme;
    cfg.memCtrl.adr = bundle->key.scheme != LogScheme::PMEMPCommit;
    if (cfg.cores < bundle->key.params.threads)
        cfg.cores = bundle->key.params.threads;
    if (opts.check) {
        cfg.analysis.check = true;
        cfg.analysis.repro = "proteus-check replay " + path;
    }

    std::cout << "replaying " << path << " ("
              << bundle->key.describe() << ")...\n";
    FullSystem system(cfg, bundle);
    const RunResult r = system.run();
    printSummary(r);
    std::cout << "kernel steps:       " << system.sim().kernelSteps()
              << " (" << system.sim().skippedCycles()
              << " cycles skipped)\n";
    if (!cfg.obs.txStats.empty() && r.txStats) {
        obs::writeTxStatsFile(cfg.obs.txStats,
                              {makeTxStatsRow(opts, bundle->key.scheme,
                                              bundle->key.kind, r)});
    }
    bool check_ok = true;
    if (opts.check && r.check) {
        CheckRow row{bundle->key.scheme, bundle->key.kind, r, *r.check};
        std::cout << formatCheckReport(row);
        check_ok = r.check->pass();
    }
    // No workload object travels with a snapshot, so structural
    // invariants cannot be checked here — proteus-trace verify covers
    // the file's integrity instead.
    if (extras.json)
        system.sim().statsRegistry().dumpJson(std::cout);
    else if (extras.stats)
        system.sim().statsRegistry().dump(std::cout);
    return r.finished && check_ok ? 0 : 1;
}

int
cmdMatrix(const BenchOptions &opts)
{
    const std::vector<LogScheme> schemes{
        LogScheme::PMEM, LogScheme::PMEMPCommit, LogScheme::PMEMNoLog,
        LogScheme::ATOM, LogScheme::Proteus, LogScheme::ProteusNoLWR};
    const auto workloads = allPaperWorkloads();

    std::vector<SimJob> jobs;
    for (LogScheme s : schemes) {
        for (WorkloadKind w : workloads)
            jobs.push_back(SimJob{opts.makeConfig(), s, w, {},
                                  std::string(toString(s)) + " / " +
                                      toString(w)});
    }

    ParallelRunner runner(opts.jobs);
    std::cout << "running " << jobs.size() << " simulations on "
              << runner.workers() << " host thread(s)...\n";
    ProgressReporter progress(std::cerr);
    const auto results = runner.run(jobs, opts, &progress);

    std::vector<std::string> cols{"scheme"};
    for (WorkloadKind w : workloads)
        cols.push_back(toString(w));
    TablePrinter table(cols);
    std::cout << "\ncycles per (scheme, workload)\n";
    table.printHeader(std::cout);

    std::vector<JsonResultRow> rows;
    std::vector<obs::TxStatsRow> tx_rows;
    std::size_t i = 0;
    bool all_finished = true;
    for (LogScheme s : schemes) {
        std::vector<std::string> cells{toString(s)};
        for (WorkloadKind w : workloads) {
            const SimJobResult &r = results[i++];
            cells.push_back(std::to_string(r.result.cycles));
            all_finished = all_finished && r.result.finished;
            rows.push_back(JsonResultRow{toString(s), toString(w),
                                         r.result, r.wallMs});
            if (!opts.txStats.empty())
                tx_rows.push_back(makeTxStatsRow(opts, s, w, r.result));
        }
        table.printRow(std::cout, cells);
    }
    if (!opts.jsonPath.empty())
        writeJsonResults(opts.jsonPath, rows);
    if (!opts.txStats.empty())
        obs::writeTxStatsFile(opts.txStats, tx_rows);
    return all_finished ? 0 : 1;
}

int
cmdCrash(WorkloadKind kind, const CliExtras &extras,
         const BenchOptions &opts)
{
    SystemConfig cfg = opts.makeConfig();
    cfg.logging.scheme = extras.scheme;
    cfg.memCtrl.adr = extras.scheme != LogScheme::PMEMPCommit;
    if (extras.scheme == LogScheme::PMEMNoLog)
        fatal("pmem+nolog is not failure-safe; nothing to recover");

    WorkloadParams params;
    params.threads = opts.threads;
    params.scale = opts.scale;
    params.initScale = opts.initScale;
    params.seed = opts.seed;

    WorkloadExtras wlExtras;
    wlExtras.gen = opts.genSpec();

    std::cout << "measuring the full run...\n";
    FullSystem full(cfg, kind, params, wlExtras);
    const RunResult complete = full.run();
    const Tick crash_at =
        complete.cycles * extras.crashPercent / 100;

    std::cout << "crashing at cycle " << crash_at << " ("
              << extras.crashPercent << "% of " << complete.cycles
              << ")...\n";
    FullSystem sys(cfg, kind, params, wlExtras);
    sys.runFor(crash_at);
    MemoryImage image = sys.crashImage();

    std::uint64_t committed = 0;
    for (unsigned t = 0; t < sys.coreCount(); ++t)
        committed += sys.core(t).committedTxs().size();
    std::cout << "committed transactions at crash: " << committed
              << "\n";

    for (unsigned t = 0; t < sys.coreCount(); ++t) {
        TraceBuilder &tb = sys.workload().builder(t);
        RecoveryResult rec;
        switch (extras.scheme) {
          case LogScheme::PMEM:
          case LogScheme::PMEMPCommit:
            rec = Recovery::recoverSoftware(image, tb.logAreaStart(),
                                            tb.logAreaEnd(),
                                            tb.logFlagAddr());
            break;
          case LogScheme::ATOM: {
            const auto [start, end] = sys.atomLogArea(t);
            rec = Recovery::recoverAtom(image, start, end);
            break;
          }
          default:
            rec = Recovery::recoverProteus(image, tb.logAreaStart(),
                                           tb.logAreaEnd());
            break;
        }
        std::cout << "  thread " << t << ": "
                  << (rec.didUndo ? "rolled back one transaction"
                                  : "nothing in flight")
                  << " (" << rec.entriesApplied << " entries)\n";
    }

    const std::string err = sys.workload().checkInvariants(image);
    std::cout << "invariants after recovery: "
              << (err.empty() ? "OK" : err) << "\n";
    return err.empty() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    if (command == "list")
        return cmdList();
    if (command == "--list-workloads" || command == "list-workloads")
        return cmdListWorkloads();
    if (command == "--help" || command == "-h")
        return usage();
    if (command == "matrix") {
        try {
            std::vector<char *> args;
            args.push_back(argv[0]);
            for (int i = 2; i < argc; ++i)
                args.push_back(argv[i]);
            return cmdMatrix(BenchOptions::parse(
                static_cast<int>(args.size()), args.data()));
        } catch (const FatalError &e) {
            std::cerr << e.what() << "\n";
            return 1;
        }
    }
    if (command != "run" && command != "crash" && command != "replay") {
        std::cerr << "unknown command: " << command << "\n";
        return usage();
    }
    if (argc < 3) {
        std::cerr << command << " requires a "
                  << (command == "replay" ? "trace file" : "workload")
                  << "\n";
        return usage();
    }

    try {
        std::vector<char *> args;
        args.push_back(argv[0]);
        for (int i = 3; i < argc; ++i)
            args.push_back(argv[i]);
        const CliExtras extras = extractExtras(args);
        const BenchOptions opts = BenchOptions::parse(
            static_cast<int>(args.size()), args.data());
        if (command == "replay")
            return cmdReplay(argv[2], extras, opts);
        const WorkloadKind kind = parseWorkload(argv[2]);
        return command == "run" ? cmdRun(kind, extras, opts)
                                : cmdCrash(kind, extras, opts);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
